package cluster

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vmalloc/internal/model"
	"vmalloc/internal/online"
	"vmalloc/internal/workload"
)

// crash abandons the cluster without the final snapshot — the test hook
// simulating a process kill mid-flight.
func (c *Cluster) crash() {
	c.closeOnce.Do(func() {
		close(c.stopCh)
		<-c.doneCh
		c.mu.Lock()
		defer c.mu.Unlock()
		c.closed = true
		if c.jr != nil {
			c.jr.f.Close()
		}
		c.scan.Close()
	})
}

func testServers(n int) []model.Server {
	out := make([]model.Server, n)
	for i := range out {
		out[i] = model.Server{
			ID:             i + 1,
			Capacity:       model.Resources{CPU: 10, Mem: 16},
			PIdle:          100,
			PPeak:          200,
			TransitionTime: 1,
		}
	}
	return out
}

func mustOpen(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustAdmit(t *testing.T, c *Cluster, reqs ...VMRequest) []Admission {
	t.Helper()
	adms, err := c.Admit(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range adms {
		if !a.Accepted {
			t.Fatalf("vm %d rejected: %s", a.ID, a.Reason)
		}
	}
	return adms
}

// TestClusterMatchesReplayEngine: driving the same workload through the
// cluster, one request per call in arrival order, reproduces the replay
// engine's placements, starts and energy exactly.
func TestClusterMatchesReplayEngine(t *testing.T) {
	inst, err := workload.Generate(
		workload.Spec{NumVMs: 80, MeanInterArrival: 3, MeanLength: 50},
		workload.FleetSpec{NumServers: 30, TransitionTime: 2},
		3,
	)
	if err != nil {
		t.Fatal(err)
	}
	eng := online.Engine{Policy: &online.MinCostPolicy{}, IdleTimeout: 5}
	rep, err := eng.Run(inst)
	if err != nil {
		t.Fatal(err)
	}

	c := mustOpen(t, Config{Servers: inst.Servers, IdleTimeout: 5})
	defer c.Close()
	for _, v := range online.ArrivalOrder(inst.VMs) {
		adms := mustAdmit(t, c, VMRequest{
			ID:              v.ID,
			Demand:          v.Demand,
			Start:           v.Start,
			DurationMinutes: v.Duration(),
		})
		if adms[0].Server != rep.Placement[v.ID] {
			t.Fatalf("vm %d placed on server %d, engine chose %d", v.ID, adms[0].Server, rep.Placement[v.ID])
		}
		if adms[0].Start != rep.Starts[v.ID] {
			t.Fatalf("vm %d starts at %d, engine at %d", v.ID, adms[0].Start, rep.Starts[v.ID])
		}
	}
	if err := c.AdvanceTo(1 << 20); err != nil {
		t.Fatal(err)
	}
	st := c.State()
	if st.Energy != rep.Energy {
		t.Errorf("energy diverged: cluster %+v, engine %+v", st.Energy, rep.Energy)
	}
	if st.Transitions != rep.Transitions {
		t.Errorf("transitions: cluster %d, engine %d", st.Transitions, rep.Transitions)
	}
	if st.ServersUsed != rep.ServersUsed {
		t.Errorf("servers used: cluster %d, engine %d", st.ServersUsed, rep.ServersUsed)
	}
	if len(st.VMs) != 0 {
		t.Errorf("%d residents after every departure", len(st.VMs))
	}
}

// TestClusterBatchDeterminism: a whole batch admitted in one call places
// identically to sequential admission in (start, ID) order, and the
// parallel scan agrees with the sequential one.
func TestClusterBatchDeterminism(t *testing.T) {
	inst, err := workload.Generate(
		workload.Spec{NumVMs: 40, MeanInterArrival: 2, MeanLength: 60},
		workload.FleetSpec{NumServers: 64, TransitionTime: 1},
		17,
	)
	if err != nil {
		t.Fatal(err)
	}
	vms := online.ArrivalOrder(inst.VMs)
	sort.SliceStable(vms, func(a, b int) bool {
		if vms[a].Start != vms[b].Start {
			return vms[a].Start < vms[b].Start
		}
		return vms[a].ID < vms[b].ID
	})
	reqs := make([]VMRequest, len(vms))
	for i, v := range vms {
		reqs[i] = VMRequest{ID: v.ID, Demand: v.Demand, Start: v.Start, DurationMinutes: v.Duration()}
	}

	batched := mustOpen(t, Config{Servers: inst.Servers, IdleTimeout: 3, Parallelism: 8})
	defer batched.Close()
	batchAdms := mustAdmit(t, batched, reqs...)

	seq := mustOpen(t, Config{Servers: inst.Servers, IdleTimeout: 3, Parallelism: 1})
	defer seq.Close()
	for i, req := range reqs {
		adm := mustAdmit(t, seq, req)[0]
		if adm != batchAdms[i] {
			t.Fatalf("vm %d: batched %+v, sequential %+v", req.ID, batchAdms[i], adm)
		}
	}
}

// TestClusterGracefulRejection: overload is a structured rejection, not
// an error, and the cluster keeps serving afterwards.
func TestClusterGracefulRejection(t *testing.T) {
	c := mustOpen(t, Config{Servers: testServers(1), IdleTimeout: 0})
	defer c.Close()
	ctx := context.Background()

	adms, err := c.Admit(ctx, []VMRequest{
		{Demand: model.Resources{CPU: 99, Mem: 1}, DurationMinutes: 10}, // larger than any server
		{Demand: model.Resources{CPU: 8, Mem: 8}, DurationMinutes: 10},  // fits
		{Demand: model.Resources{CPU: 8, Mem: 8}, DurationMinutes: 10},  // no room left
		{Demand: model.Resources{CPU: 1, Mem: 1}, DurationMinutes: 0},   // invalid duration
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, false, false}
	for i, adm := range adms {
		if adm.Accepted != want[i] {
			t.Errorf("request %d: accepted=%v (%s), want %v", i, adm.Accepted, adm.Reason, want[i])
		}
		if !adm.Accepted && adm.Reason == "" {
			t.Errorf("request %d: rejection without reason", i)
		}
	}
	// Still serving: a small VM fits next to the big one.
	mustAdmit(t, c, VMRequest{Demand: model.Resources{CPU: 1, Mem: 1}, DurationMinutes: 5})

	if _, err := c.Release(context.Background(), 999); !errors.As(err, new(*NotResidentError)) {
		t.Errorf("Release(999) = %v, want NotResidentError", err)
	}
}

// testOp is one deterministic mutation for the durability tests.
type testOp struct {
	admit   *VMRequest
	release int
	advance int
}

func applyOps(t *testing.T, c *Cluster, ops []testOp) {
	t.Helper()
	for _, op := range ops {
		switch {
		case op.admit != nil:
			mustAdmit(t, c, *op.admit)
		case op.release > 0:
			if _, err := c.Release(context.Background(), op.release); err != nil {
				t.Fatal(err)
			}
		default:
			if err := c.AdvanceTo(op.advance); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func durabilityOps() []testOp {
	req := func(id, start, dur int, cpu float64) *VMRequest {
		return &VMRequest{ID: id, Demand: model.Resources{CPU: cpu, Mem: cpu}, Start: start, DurationMinutes: dur}
	}
	return []testOp{
		{admit: req(1, 1, 60, 4)},
		{admit: req(2, 1, 90, 6)},
		{admit: req(3, 4, 30, 8)},
		{advance: 10},
		{release: 2},
		{admit: req(4, 12, 45, 5)},
		{advance: 20},
		{admit: req(5, 20, 200, 3)},
		{release: 1},
		{admit: req(6, 25, 10, 2)},
	}
}

func stateJSON(t *testing.T, c *Cluster) []byte {
	t.Helper()
	b, err := c.StateJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestClusterCrashRecovery: a crash that tears the last journal record
// recovers to exactly the state of a cluster that never performed the
// torn mutation.
func TestClusterCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	servers := testServers(6)
	cfg := Config{Servers: servers, IdleTimeout: 2, Dir: dir, SnapshotEvery: -1}
	ops := durabilityOps()

	c := mustOpen(t, cfg)
	applyOps(t, c, ops)
	c.crash()

	// Tear the final record: chop bytes off the journal mid-line.
	path := filepath.Join(dir, journalName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	// Reference: a volatile cluster that performed every op but the last.
	ref := mustOpen(t, Config{Servers: servers, IdleTimeout: 2})
	defer ref.Close()
	applyOps(t, ref, ops[:len(ops)-1])

	restored := mustOpen(t, cfg)
	defer restored.Close()
	got, want := stateJSON(t, restored), stateJSON(t, ref)
	if !bytes.Equal(got, want) {
		t.Errorf("restored state diverged from the never-crashed reference:\n--- restored\n%s\n--- reference\n%s", got, want)
	}

	// The restored cluster keeps journaling: apply the lost op again and
	// survive another crash/reopen cycle.
	applyOps(t, restored, ops[len(ops)-1:])
	want = stateJSON(t, restored)
	restored.crash()
	again := mustOpen(t, cfg)
	defer again.Close()
	if got := stateJSON(t, again); !bytes.Equal(got, want) {
		t.Errorf("second recovery diverged:\n--- restored\n%s\n--- want\n%s", got, want)
	}
}

// TestClusterJournalFailureSticky: the first journal write failure
// freezes the cluster — subsequent mutations return ErrJournalBroken and
// never apply, so the log never grows past the hole and a restart
// recovers exactly the journaled prefix.
func TestClusterJournalFailureSticky(t *testing.T) {
	dir := t.TempDir()
	servers := testServers(4)
	cfg := Config{Servers: servers, IdleTimeout: 2, Dir: dir, SnapshotEvery: -1}
	req := func(id int) VMRequest {
		return VMRequest{ID: id, Demand: model.Resources{CPU: 1, Mem: 1}, DurationMinutes: 30}
	}
	c := mustOpen(t, cfg)
	mustAdmit(t, c, req(1), req(2), req(3))

	// Break the journal out from under the cluster: every append fails.
	c.mu.Lock()
	c.jr.f.Close()
	c.mu.Unlock()

	ctx := context.Background()
	adms, err := c.Admit(ctx, []VMRequest{req(4)})
	if !errors.Is(err, ErrJournalBroken) {
		t.Fatalf("admit after break: err = %v, want ErrJournalBroken", err)
	}
	// The admission that hit the failure took effect in memory and is
	// reported alongside the error.
	if len(adms) != 1 || !adms[0].Accepted {
		t.Fatalf("breaking admission outcome %+v", adms)
	}
	// From here on nothing mutates: no admissions, releases or ticks.
	if adms, err = c.Admit(ctx, []VMRequest{req(5)}); !errors.Is(err, ErrJournalBroken) {
		t.Fatalf("second admit: err = %v (adms %+v), want ErrJournalBroken", err, adms)
	}
	if _, err := c.Release(context.Background(), 1); !errors.Is(err, ErrJournalBroken) {
		t.Fatalf("release: err = %v, want ErrJournalBroken", err)
	}
	if err := c.AdvanceTo(1000); !errors.Is(err, ErrJournalBroken) {
		t.Fatalf("advance: err = %v, want ErrJournalBroken", err)
	}
	c.mu.Lock()
	_, ok5 := c.fleet.Resident(5)
	_, ok1 := c.fleet.Resident(1)
	now := c.fleet.Now()
	c.mu.Unlock()
	if ok5 {
		t.Error("vm 5 was admitted past a broken journal")
	}
	if !ok1 {
		t.Error("vm 1 was released past a broken journal")
	}
	if now >= 1000 {
		t.Error("clock advanced past a broken journal")
	}
	c.crash()

	// The restart sees the journaled prefix: VMs 1–3, no trace of 4.
	restored := mustOpen(t, cfg)
	defer restored.Close()
	ref := mustOpen(t, Config{Servers: servers, IdleTimeout: 2})
	defer ref.Close()
	mustAdmit(t, ref, req(1), req(2), req(3))
	if got, want := stateJSON(t, restored), stateJSON(t, ref); !bytes.Equal(got, want) {
		t.Errorf("restored state diverged from the journaled prefix:\n--- restored\n%s\n--- reference\n%s", got, want)
	}
}

// TestClusterJournalHeal: a successful snapshot clears the sticky journal
// failure — it captures the complete in-memory state, so nothing depends
// on the records the journal failed to take — and mutation resumes.
func TestClusterJournalHeal(t *testing.T) {
	c := mustOpen(t, Config{Servers: testServers(4), IdleTimeout: 2, Dir: t.TempDir(), SnapshotEvery: -1})
	defer c.Close()
	small := VMRequest{Demand: model.Resources{CPU: 1, Mem: 1}, DurationMinutes: 30}
	mustAdmit(t, c, small)
	c.mu.Lock()
	c.jfail = ErrJournalBroken // simulate a recorded write failure
	c.mu.Unlock()
	if _, err := c.Admit(context.Background(), []VMRequest{small}); !errors.Is(err, ErrJournalBroken) {
		t.Fatalf("admit while broken: err = %v, want ErrJournalBroken", err)
	}
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	mustAdmit(t, c, small)
}

// TestClusterSnapshotCompaction: automatic snapshots compact the journal,
// and a graceful restart serves a byte-identical state.
func TestClusterSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Servers: testServers(6), IdleTimeout: 2, Dir: dir, SnapshotEvery: 4}

	c := mustOpen(t, cfg)
	applyOps(t, c, durabilityOps())
	want := stateJSON(t, c)

	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("no snapshot after %d mutations: %v", len(durabilityOps()), err)
	}
	recs, _, err := readRecords(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) >= len(durabilityOps()) {
		t.Errorf("journal holds %d records after compaction, want < %d", len(recs), len(durabilityOps()))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Close snapshots, so the journal must be empty now.
	recs, _, err = readRecords(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("journal holds %d records after Close, want 0", len(recs))
	}

	c2 := mustOpen(t, cfg)
	defer c2.Close()
	if got := stateJSON(t, c2); !bytes.Equal(got, want) {
		t.Errorf("state after graceful restart diverged:\n--- got\n%s\n--- want\n%s", got, want)
	}
	// Auto-assigned IDs continue after the highest durable ID.
	adm := mustAdmit(t, c2, VMRequest{Demand: model.Resources{CPU: 1, Mem: 1}, DurationMinutes: 5})[0]
	if adm.ID != 7 {
		t.Errorf("next auto ID = %d, want 7", adm.ID)
	}
}

// TestClusterConcurrentAdmissions: ≥1k concurrent admissions batch up
// without races, every request gets exactly one outcome, and the journal
// replays the result byte-identically.
func TestClusterConcurrentAdmissions(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Servers:     testServers(32),
		IdleTimeout: -1,
		BatchWindow: 200 * time.Microsecond,
		Dir:         dir,
	}
	c := mustOpen(t, cfg)

	const n = 1200
	var wg sync.WaitGroup
	var accepted, rejected, failed atomic.Int64
	ids := make(chan int, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			adms, err := c.Admit(context.Background(), []VMRequest{
				{Demand: model.Resources{CPU: 0.1, Mem: 0.1}, DurationMinutes: 1000},
			})
			switch {
			case err != nil:
				failed.Add(1)
			case adms[0].Accepted:
				accepted.Add(1)
				ids <- adms[0].ID
			default:
				rejected.Add(1)
			}
		}()
	}
	// Hammer the read paths concurrently.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.State()
					if err := c.WriteMetrics(io.Discard); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	close(ids)

	if failed.Load() != 0 {
		t.Fatalf("%d Admit calls errored", failed.Load())
	}
	if got := accepted.Load() + rejected.Load(); got != n {
		t.Fatalf("%d outcomes for %d requests", got, n)
	}
	// 32 servers × 10 CPU handles 1200 × 0.1 with room to spare.
	if rejected.Load() != 0 {
		t.Errorf("%d rejections on an under-committed fleet", rejected.Load())
	}
	seen := make(map[int]bool, n)
	for id := range ids {
		if seen[id] {
			t.Fatalf("vm id %d assigned twice", id)
		}
		seen[id] = true
	}
	st := c.State()
	if st.Admitted != int(accepted.Load()) || len(st.VMs) != int(accepted.Load()) {
		t.Errorf("state shows %d admitted / %d resident, want %d", st.Admitted, len(st.VMs), accepted.Load())
	}

	// Release half concurrently, then prove the whole history replays.
	var rel sync.WaitGroup
	i := 0
	for id := range seen {
		if i++; i%2 == 0 {
			continue
		}
		rel.Add(1)
		go func(id int) {
			defer rel.Done()
			if _, err := c.Release(context.Background(), id); err != nil {
				t.Error(err)
			}
		}(id)
	}
	rel.Wait()

	want := stateJSON(t, c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	restored := mustOpen(t, cfg)
	defer restored.Close()
	if got := stateJSON(t, restored); !bytes.Equal(got, want) {
		t.Error("state after restart diverged from pre-shutdown state")
	}
}

// TestClusterClosed: mutations after Close fail with ErrClosed.
func TestClusterClosed(t *testing.T) {
	c := mustOpen(t, Config{Servers: testServers(2)})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(context.Background(), []VMRequest{{Demand: model.Resources{CPU: 1, Mem: 1}, DurationMinutes: 1}}); !errors.Is(err, ErrClosed) {
		t.Errorf("Admit after Close = %v, want ErrClosed", err)
	}
	if _, err := c.Release(context.Background(), 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Release after Close = %v, want ErrClosed", err)
	}
	if err := c.AdvanceTo(10); !errors.Is(err, ErrClosed) {
		t.Errorf("AdvanceTo after Close = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
}

// TestStageHistogramsOnMetrics: the queue-wait and fsync stage durations
// — already recorded per decision on the flight recorder — are also
// exported as cumulative /metrics histogram families, observed once per
// Admit call (queue wait) and once per journal fsync.
func TestStageHistogramsOnMetrics(t *testing.T) {
	c := mustOpen(t, Config{Servers: testServers(4), Dir: t.TempDir()})
	defer c.Close()
	ctx := context.Background()
	mustAdmit(t, c, VMRequest{ID: 1, Demand: model.Resources{CPU: 1, Mem: 1}, DurationMinutes: 10})
	mustAdmit(t, c, VMRequest{ID: 2, Demand: model.Resources{CPU: 1, Mem: 1}, DurationMinutes: 10})
	if _, err := c.Release(ctx, 1); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Two Admit calls waited in the queue; two batch fsyncs plus the
	// release's own fsync ran.
	for _, want := range []string{
		"vmalloc_cluster_queue_wait_seconds_count 2",
		"vmalloc_cluster_fsync_seconds_count 3",
		"# TYPE vmalloc_cluster_queue_wait_seconds histogram",
		"# TYPE vmalloc_cluster_fsync_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// A volatile cluster never syncs: the family is present, empty.
	v := mustOpen(t, Config{Servers: testServers(2)})
	defer v.Close()
	mustAdmit(t, v, VMRequest{ID: 1, Demand: model.Resources{CPU: 1, Mem: 1}, DurationMinutes: 10})
	buf.Reset()
	if err := v.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "vmalloc_cluster_fsync_seconds_count 0") {
		t.Error("volatile cluster should export an empty fsync histogram")
	}
}
