package cluster

import (
	"os"
	"path/filepath"
	"testing"
)

func writeJournal(t *testing.T, dir, content string) string {
	t.Helper()
	path := filepath.Join(dir, journalName)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestJournalTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir,
		`{"seq":1,"op":"tick","t":5}`+"\n"+
			`{"seq":2,"op":"tick","t":9}`+"\n"+
			`{"seq":3,"op":"admit","t":9,"vm":{"id":7,"dem`) // torn mid-record
	j, snap, recs, err := openJournal(dir, false, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	if snap != nil {
		t.Error("snapshot appeared from nowhere")
	}
	if len(recs) != 2 || recs[1].Seq != 2 {
		t.Fatalf("recs = %+v, want the two clean records", recs)
	}
	// The torn bytes are gone: appending continues cleanly.
	j.seq = 2
	if err := j.append(record{Op: opTick, T: 12}); err != nil {
		t.Fatal(err)
	}
	recs2, _, err := readRecords(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 3 || recs2[2].Seq != 3 || recs2[2].T != 12 {
		t.Fatalf("after append recs = %+v", recs2)
	}
}

func TestJournalTerminatedTornTailDropped(t *testing.T) {
	// A torn record that happens to end in a newline is still dropped.
	dir := t.TempDir()
	writeJournal(t, dir, `{"seq":1,"op":"tick","t":5}`+"\n"+`{"seq":2,"op":`+"\n")
	_, _, recs, err := openJournal(dir, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("recs = %+v, want 1 clean record", recs)
	}
}

func TestJournalCorruptMiddleRefused(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir,
		`{"seq":1,"op":"tick","t":5}`+"\n"+
			`garbage`+"\n"+
			`{"seq":3,"op":"tick","t":9}`+"\n")
	if _, _, _, err := openJournal(dir, false, false); err == nil {
		t.Fatal("mid-journal corruption accepted")
	}
}
