package cluster

import (
	"context"
	"testing"
	"time"

	"vmalloc/internal/model"
	"vmalloc/internal/obs"
)

// TestFlightRecorderDecisions: the cluster stamps every admit, reject and
// release onto the configured recorder with the context's request id, the
// batch id and per-stage durations — and a nil recorder changes nothing.
func TestFlightRecorderDecisions(t *testing.T) {
	rec := obs.NewFlightRecorder(64)
	c := mustOpen(t, Config{Servers: testServers(2), IdleTimeout: 2, Recorder: rec})
	defer c.Close()

	ctx := obs.WithRequestID(context.Background(), "cluster-test-id")
	ctx = obs.WithDecodeSpan(ctx, 3*time.Millisecond)
	adms, err := c.Admit(ctx, []VMRequest{
		{ID: 1, Demand: model.Resources{CPU: 1, Mem: 1}, DurationMinutes: 30},
		{ID: 2, Demand: model.Resources{CPU: 999, Mem: 999}, DurationMinutes: 30},
		{ID: 3, DurationMinutes: 0}, // normalize reject: bad duration
	})
	if err != nil {
		t.Fatal(err)
	}
	if !adms[0].Accepted || adms[1].Accepted || adms[2].Accepted {
		t.Fatalf("admissions %+v", adms)
	}
	if _, err := c.Release(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// A release of an unknown VM is recorded too, as a failed release.
	if _, err := c.Release(ctx, 42); err == nil {
		t.Fatal("release of unknown VM succeeded")
	}

	ds := rec.Decisions(obs.Filter{})
	if len(ds) != 5 {
		t.Fatalf("got %d decisions, want 5: %+v", len(ds), ds)
	}
	for i, d := range ds {
		if d.RequestID != "cluster-test-id" {
			t.Errorf("decision %d request id %q", i, d.RequestID)
		}
	}

	admit := rec.Decisions(obs.Filter{Op: obs.OpAdmit})
	if len(admit) != 1 || admit[0].VM != 1 {
		t.Fatalf("admit decisions %+v", admit)
	}
	a := admit[0]
	if a.Batch == 0 || a.Server == 0 || a.End <= a.Start {
		t.Errorf("admit decision %+v", a)
	}
	if a.Candidates == 0 {
		t.Errorf("admit evaluated no candidates: %+v", a)
	}
	if a.Stages.Decode != 3*time.Millisecond {
		t.Errorf("decode span %v, want 3ms", a.Stages.Decode)
	}
	if a.Stages.Scan <= 0 || a.Stages.Commit <= 0 || a.Stages.QueueWait < 0 {
		t.Errorf("admit stages %+v", a.Stages)
	}

	rejects := rec.Decisions(obs.Filter{Op: obs.OpReject})
	if len(rejects) != 2 {
		t.Fatalf("reject decisions %+v", rejects)
	}
	for _, d := range rejects {
		if d.Reason == "" {
			t.Errorf("reject without reason: %+v", d)
		}
	}
	// The infeasible-demand reject went through the scan; the normalize
	// reject (bad duration) never reached it and records only decode and
	// queue-wait.
	byVM := map[int]obs.Decision{}
	for _, d := range rejects {
		byVM[d.VM] = d
	}
	if d := byVM[2]; d.Stages.Scan <= 0 || d.Batch == 0 {
		t.Errorf("scanned reject %+v", d)
	}
	if d := byVM[3]; d.Stages.Scan != 0 {
		t.Errorf("normalize reject has a scan span: %+v", d)
	}

	rels := rec.Decisions(obs.Filter{Op: obs.OpRelease})
	if len(rels) != 2 {
		t.Fatalf("release decisions %+v", rels)
	}
	ok, failed := rels[0], rels[1]
	if ok.VM != 1 || ok.Server == 0 || ok.Reason != "" {
		t.Errorf("successful release %+v", ok)
	}
	if failed.VM != 42 || failed.Reason == "" {
		t.Errorf("failed release %+v", failed)
	}
}

// TestRecorderOffByDefault: without a Config.Recorder nothing panics and
// behaviour is unchanged.
func TestRecorderOffByDefault(t *testing.T) {
	c := mustOpen(t, Config{Servers: testServers(2), IdleTimeout: 2})
	defer c.Close()
	mustAdmit(t, c, VMRequest{Demand: model.Resources{CPU: 1, Mem: 1}, DurationMinutes: 10})
	if _, err := c.Release(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}
