package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"vmalloc/internal/model"
)

// realBinaryJournal materializes a genuine binary-format journal by
// driving a binary-configured cluster through an admit/release/tick
// history, reading the bytes back before Close compacts them.
func realBinaryJournal(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	c := mustOpenTB(tb, Config{Servers: testServers(4), IdleTimeout: 2, Dir: dir, SnapshotEvery: -1,
		JournalFormat: JournalFormatBinary})
	reqs := []VMRequest{
		{ID: 1, Demand: model.Resources{CPU: 2, Mem: 3}, Start: 1, DurationMinutes: 10},
		{ID: 2, Demand: model.Resources{CPU: 8, Mem: 8}, Start: 2, DurationMinutes: 4},
		{ID: 3, Demand: model.Resources{CPU: 4, Mem: 4}, Start: 3, DurationMinutes: 20},
	}
	if _, err := c.Admit(context.Background(), reqs); err != nil {
		tb.Fatal(err)
	}
	if err := c.AdvanceTo(5); err != nil {
		tb.Fatal(err)
	}
	if _, err := c.Release(context.Background(), 1); err != nil {
		tb.Fatal(err)
	}
	if err := c.AdvanceTo(9); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		tb.Fatal(err)
	}
	if err := c.Close(); err != nil {
		tb.Fatal(err)
	}
	return data
}

// realBinaryMigrationJournal is realBinaryJournal's counterpart holding
// a genuine migrate record.
func realBinaryMigrationJournal(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	c := mustOpenTB(tb, Config{Servers: testServers(4), IdleTimeout: 2, Dir: dir, SnapshotEvery: -1,
		MigrationCostPerGB: 0.5, JournalFormat: JournalFormatBinary})
	reqs := []VMRequest{
		{ID: 1, Demand: model.Resources{CPU: 2, Mem: 2}, Start: 1, DurationMinutes: 20},
		{ID: 2, Demand: model.Resources{CPU: 2, Mem: 4}, Start: 1, DurationMinutes: 30},
	}
	if _, err := c.Admit(context.Background(), reqs); err != nil {
		tb.Fatal(err)
	}
	if err := c.AdvanceTo(5); err != nil {
		tb.Fatal(err)
	}
	onto := c.State().VMs[0].Server
	if _, err := c.Migrate(context.Background(), 2, testServers(4)[(onto+1)%4].ID); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		tb.Fatal(err)
	}
	if err := c.Close(); err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzBinaryJournal feeds arbitrary bytes to the reopen path of a
// binary-configured cluster. Whatever the file holds — binary frames,
// JSON lines (the codecs are self-describing, so a mixed deployment
// hands either to either), torn tails, flipped length prefixes or
// garbage — Open must restore a state that survives a digest-stable
// close/reopen round trip, or refuse with ErrCorruptJournal. Never a
// panic, never a partial fleet.
func FuzzBinaryJournal(f *testing.F) {
	base := realBinaryJournal(f)
	f.Add(base)
	f.Add([]byte{})
	f.Add(append([]byte{}, binMagic...)) // bare magic: an empty binary log
	f.Add([]byte{0x00, 'v', 'm', 'j', 'l', '9'})
	// Torn tails at several depths: interrupted writes, which reopen must
	// truncate away, not refuse.
	for _, cut := range []int{1, 7, 13} {
		if len(base) > cut {
			f.Add(base[:len(base)-cut])
		}
	}
	// A flipped length-prefix byte on the first frame: the framing is
	// destroyed, which must read as corruption.
	if len(base) > len(binMagic)+8 {
		mut := append([]byte{}, base...)
		mut[len(binMagic)+2] ^= 0x40
		f.Add(mut)
		// A flipped payload byte mid-log: lost history.
		mid := append([]byte{}, base...)
		mid[len(mid)/2] ^= 0x01
		f.Add(mid)
	}
	// Mid-log garbage: a correctly-framed record followed by noise and
	// more data.
	garbage := append([]byte{}, binMagic...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], 4)
	garbage = append(garbage, hdr[:]...)
	garbage = append(garbage, []byte("XXXX")...)
	garbage = append(garbage, base[len(binMagic):]...)
	f.Add(garbage)
	// Mixed formats: a genuine JSON journal under a binary-configured
	// open (must replay: the reader sniffs), and binary magic with JSON
	// text behind it (must refuse or truncate, never misparse).
	jsonBase := realJournal(f)
	f.Add(jsonBase)
	f.Add(append(append([]byte{}, binMagic...), jsonBase...))
	// A genuine history ending in a live migration must replay cleanly.
	migBase := realBinaryMigrationJournal(f)
	f.Add(migBase)
	if len(migBase) > 11 {
		f.Add(migBase[:len(migBase)-11])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := Config{Servers: testServers(4), IdleTimeout: 2, Dir: dir, SnapshotEvery: -1,
			MigrationCostPerGB: 0.5, JournalFormat: JournalFormatBinary}
		c, err := Open(cfg)
		if err != nil {
			if !errors.Is(err, ErrCorruptJournal) {
				t.Fatalf("refusal must wrap ErrCorruptJournal, got: %v", err)
			}
			return
		}
		want, err := c.StateDigest()
		if err != nil {
			t.Fatalf("restored cluster cannot serve state: %v", err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("closing restored cluster: %v", err)
		}
		c2, err := Open(cfg)
		if err != nil {
			t.Fatalf("reopening after clean close: %v", err)
		}
		got, err := c2.StateDigest()
		if err != nil {
			t.Fatal(err)
		}
		if err := c2.Close(); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("state digest changed across close/reopen: %s != %s", got, want)
		}
	})
}
