package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"vmalloc/internal/model"
)

// scriptOutcome is the observable trace of one scripted run: every
// admission decision (server, start, end), every release, every
// consolidation's executed moves, and the final state digest. Two runs
// are behaviourally identical exactly when their outcomes are
// byte-identical strings.
type scriptOutcome struct {
	transcript string
	digest     string
}

// runScript drives cfg through a deterministic op stream derived from
// seed: mostly admits, with releases, clock advances and consolidation
// passes mixed in. The caller owns cfg.Dir (empty for volatile runs).
// Any preClose hooks run after the script but before Close — the moment
// a journaled directory still holds its record log, since Close
// compacts it into a snapshot.
func runScript(t *testing.T, cfg Config, seed int64, preClose ...func()) scriptOutcome {
	t.Helper()
	cfg.Servers = testServers(8)
	cfg.IdleTimeout = 3
	cfg.MigrationCostPerGB = 0.5
	c := mustOpenTB(t, cfg)
	defer func() {
		if err := c.Close(); err != nil {
			t.Fatalf("seed %d: close: %v", seed, err)
		}
	}()

	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	live := []int{}
	nextID := 1
	ctx := context.Background()
	for op := 0; op < 120; op++ {
		switch r := rng.Float64(); {
		case r < 0.55: // admit
			req := VMRequest{
				ID:              nextID,
				Demand:          model.Resources{CPU: float64(1 + rng.Intn(6)), Mem: float64(1 + rng.Intn(8))},
				Start:           c.State().Now + rng.Intn(4),
				DurationMinutes: 1 + rng.Intn(30),
			}
			nextID++
			adms, err := c.Admit(ctx, []VMRequest{req})
			if err != nil {
				t.Fatalf("seed %d op %d: admit: %v", seed, op, err)
			}
			a := adms[0]
			fmt.Fprintf(&sb, "admit id=%d ok=%t server=%d start=%d end=%d\n",
				a.ID, a.Accepted, a.Server, a.Start, a.End)
			// Placing a VM advances the clock to its start, which may
			// expire other leases: re-derive the live set.
			live = residentIDs(c)
		case r < 0.75 && len(live) > 0: // release
			id := live[rng.Intn(len(live))]
			rel, err := c.Release(ctx, id)
			var nre *NotResidentError
			if errors.As(err, &nre) {
				fmt.Fprintf(&sb, "release id=%d gone\n", id)
			} else if err != nil {
				t.Fatalf("seed %d op %d: release %d: %v", seed, op, id, err)
			} else {
				fmt.Fprintf(&sb, "release id=%d server=%d start=%d\n", id, rel.Server, rel.Start)
			}
			live = residentIDs(c)
		case r < 0.9: // advance the clock
			to := c.State().Now + 1 + rng.Intn(3)
			if err := c.AdvanceTo(to); err != nil {
				t.Fatalf("seed %d op %d: advance to %d: %v", seed, op, to, err)
			}
			fmt.Fprintf(&sb, "advance to=%d\n", to)
			live = residentIDs(c)
		default: // consolidation pass
			res, err := c.Consolidate(ctx, ConsolidateOptions{})
			if err != nil {
				t.Fatalf("seed %d op %d: consolidate: %v", seed, op, err)
			}
			fmt.Fprintf(&sb, "consolidate clock=%d donors=%d executed=%d saved=%g\n",
				res.Clock, res.Donors, res.Executed, res.Saved)
			// Seq is deliberately omitted: it numbers journal records, so a
			// volatile run and a journaled run assign different values to
			// behaviourally identical migrations.
			for _, m := range res.Moves {
				fmt.Fprintf(&sb, "  move vm=%d from=%d to=%d t=%d handoff=%d start=%d end=%d policy=%s saved=%g cost=%g\n",
					m.VM, m.From, m.To, m.Time, m.Handoff, m.Start, m.End, m.Policy, m.SavedWattMinutes, m.CostWattMinutes)
			}
		}
	}
	digest, err := c.StateDigest()
	if err != nil {
		t.Fatalf("seed %d: digest: %v", seed, err)
	}
	for _, hook := range preClose {
		hook()
	}
	return scriptOutcome{transcript: sb.String(), digest: digest}
}

// copyJournalDir copies a journal directory's files, preserving the
// exact bytes of an uncompacted log.
func copyJournalDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// residentIDs re-derives the live VM set after a clock advance expired
// some leases, in a deterministic order.
func residentIDs(c *Cluster) []int {
	st := c.State()
	ids := make([]int, 0, len(st.VMs))
	for _, v := range st.VMs {
		ids = append(ids, v.VM.ID)
	}
	sort.Ints(ids)
	return ids
}

// TestDeterminismIndexAndParallelism is the metamorphic determinism
// suite: the feasibility index and the parallel scan are pure
// optimisations, so index-on vs index-off and parallelism 1 vs N must
// produce byte-identical placement transcripts and state digests on
// every seed — including runs whose logs hold migrations from
// consolidation passes.
func TestDeterminismIndexAndParallelism(t *testing.T) {
	type variant struct {
		name        string
		noIndex     bool
		parallelism int
	}
	variants := []variant{
		{"index+seq", false, 1},
		{"index+par4", false, 4},
		{"noindex+seq", true, 1},
		{"noindex+par4", true, 4},
	}
	for seed := int64(1); seed <= 20; seed++ {
		base := runScript(t, Config{Parallelism: 1, DisableFeasibilityIndex: true}, seed)
		if !strings.Contains(base.transcript, "executed=") {
			t.Fatalf("seed %d: script ran no consolidation pass", seed)
		}
		for _, v := range variants {
			got := runScript(t, Config{Parallelism: v.parallelism, DisableFeasibilityIndex: v.noIndex}, seed)
			if got.transcript != base.transcript {
				t.Fatalf("seed %d: %s transcript diverged from baseline:\n%s",
					seed, v.name, firstDiff(base.transcript, got.transcript))
			}
			if got.digest != base.digest {
				t.Fatalf("seed %d: %s digest = %s, baseline = %s", seed, v.name, got.digest, base.digest)
			}
		}
	}
}

// TestDeterminismJournalFormats extends the suite across the
// persistence axis: the same script against a JSON journal and a binary
// journal must match the volatile run's transcript and digest, and each
// journaled directory must replay to the same digest after close.
func TestDeterminismJournalFormats(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		base := runScript(t, Config{Parallelism: 1}, seed)
		for _, format := range []string{JournalFormatJSON, JournalFormatBinary} {
			dir := t.TempDir()
			replayDir := t.TempDir()
			cfg := Config{Parallelism: 1, Dir: dir, SnapshotEvery: -1, DisableFsync: true, JournalFormat: format}
			got := runScript(t, cfg, seed, func() { copyJournalDir(t, dir, replayDir) })
			if got.transcript != base.transcript {
				t.Fatalf("seed %d format %s: transcript diverged from volatile run:\n%s",
					seed, format, firstDiff(base.transcript, got.transcript))
			}
			if got.digest != base.digest {
				t.Fatalf("seed %d format %s: digest = %s, volatile = %s", seed, format, got.digest, base.digest)
			}
			// Replay both directories: the snapshot-compacted one (clean
			// close) and the pre-close copy whose full record log must
			// rebuild the same state.
			cfg.Servers = testServers(8)
			cfg.IdleTimeout = 3
			cfg.MigrationCostPerGB = 0.5
			for _, rd := range []string{dir, replayDir} {
				rcfg := cfg
				rcfg.Dir = rd
				c, err := Open(rcfg)
				if err != nil {
					t.Fatalf("seed %d format %s: reopen %s: %v", seed, format, rd, err)
				}
				replayed, err := c.StateDigest()
				if err != nil {
					t.Fatal(err)
				}
				if err := c.Close(); err != nil {
					t.Fatal(err)
				}
				if replayed != base.digest {
					t.Fatalf("seed %d format %s: replayed digest = %s, volatile = %s",
						seed, format, replayed, base.digest)
				}
			}
		}
	}
}

// firstDiff renders the first line where two transcripts diverge.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  baseline: %s\n  got:      %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
