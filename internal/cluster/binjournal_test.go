package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vmalloc/internal/model"
)

func binTestRecords() []record {
	return []record{
		{Seq: 1, Op: opAdmit, T: 1, Server: 2, Start: 5, VM: &model.VM{
			ID: 7, Type: "m5.xlarge", Demand: model.Resources{CPU: 2.5, Mem: 7.25}, Start: 5, End: 34,
		}},
		{Seq: 2, Op: opTick, T: 6},
		{Seq: 3, Op: opMigrate, T: 7, ID: 7, Server: 1, From: 2, Handoff: 9,
			Policy: "min-migration-time", Saved: 120.5, Cost: 3.625},
		{Seq: 4, Op: opRelease, T: 9, ID: 7},
		// Unicode type string and awkward floats must survive the trip.
		{Seq: 5, Op: opAdmit, T: 10, Server: 0, Start: 10, VM: &model.VM{
			ID: 8, Type: "gpu-模型", Demand: model.Resources{CPU: math.SmallestNonzeroFloat64, Mem: 1e308}, Start: 10, End: 11,
		}},
	}
}

func encodeBinLog(t *testing.T, recs []record) []byte {
	t.Helper()
	buf := append([]byte{}, binMagic...)
	var err error
	for _, r := range recs {
		if buf, err = appendBinaryFrame(buf, r); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

// TestBinaryCodecRoundTrip pins every op's encode/decode loop: the
// records read back from a framed log are deep-equal to what was
// written.
func TestBinaryCodecRoundTrip(t *testing.T) {
	want := binTestRecords()
	buf := encodeBinLog(t, want)
	got, clean, err := readBinaryRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	if clean != int64(len(buf)) {
		t.Fatalf("clean offset %d, want %d", clean, len(buf))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestBinaryReaderTornTail checks the torn-tail taxonomy byte by byte:
// every strict prefix of the final frame is an interrupted write, so the
// reader must return the preceding records and a clean offset that cuts
// the tail — never an error.
func TestBinaryReaderTornTail(t *testing.T) {
	recs := binTestRecords()
	buf := encodeBinLog(t, recs)
	prefix := encodeBinLog(t, recs[:len(recs)-1])
	for cut := len(prefix) + 1; cut < len(buf); cut++ {
		got, clean, err := readBinaryRecords(buf[:cut])
		if err != nil {
			t.Fatalf("cut at %d: torn tail must not error: %v", cut, err)
		}
		if clean != int64(len(prefix)) {
			t.Fatalf("cut at %d: clean = %d, want %d", cut, clean, len(prefix))
		}
		if len(got) != len(recs)-1 {
			t.Fatalf("cut at %d: %d records, want %d", cut, len(got), len(recs)-1)
		}
	}
}

// TestBinaryReaderCorruption checks the refusal half of the taxonomy:
// mid-log damage and destroyed length prefixes are lost history, not
// torn tails.
func TestBinaryReaderCorruption(t *testing.T) {
	recs := binTestRecords()
	buf := encodeBinLog(t, recs)

	t.Run("flipped payload byte mid-log", func(t *testing.T) {
		mut := append([]byte{}, buf...)
		mut[len(binMagic)+8+2] ^= 0xff // inside the first frame's payload
		if _, _, err := readBinaryRecords(mut); !errors.Is(err, ErrCorruptJournal) {
			t.Fatalf("want ErrCorruptJournal, got %v", err)
		}
	})
	t.Run("absurd length prefix", func(t *testing.T) {
		mut := append([]byte{}, buf...)
		binary.LittleEndian.PutUint32(mut[len(binMagic):], maxBinRecordLen+1)
		if _, _, err := readBinaryRecords(mut); !errors.Is(err, ErrCorruptJournal) {
			t.Fatalf("want ErrCorruptJournal, got %v", err)
		}
	})
	t.Run("flipped final-frame CRC is torn", func(t *testing.T) {
		mut := append([]byte{}, buf...)
		prefix := encodeBinLog(t, recs[:len(recs)-1])
		mut[len(prefix)+4] ^= 0xff // final frame's CRC field
		got, clean, err := readBinaryRecords(mut)
		if err != nil {
			t.Fatalf("final-frame CRC damage is a torn write, got %v", err)
		}
		if clean != int64(len(prefix)) || len(got) != len(recs)-1 {
			t.Fatalf("clean %d records %d, want %d / %d", clean, len(got), len(prefix), len(recs)-1)
		}
	})
	t.Run("valid frame with undecodable payload", func(t *testing.T) {
		mut := encodeBinLog(t, recs[:1])
		mut = appendRawFrame(mut, []byte{0x01, 0xFF}) // truncated varints
		mut = appendRawFrame(mut, []byte{0x06, 0x01, 0x02})
		if _, _, err := readBinaryRecords(mut); !errors.Is(err, ErrCorruptJournal) {
			t.Fatalf("want ErrCorruptJournal, got %v", err)
		}
	})
}

// appendRawFrame frames arbitrary payload bytes with a correct CRC, for
// building frames the decoder must reject on content.
func appendRawFrame(buf, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// TestJournalFormatUpgradeAtCompaction pins the upgrade path: a
// directory written by the JSON codec, opened with the binary format
// configured, keeps appending JSON until a snapshot empties the log —
// then the rewritten log is binary, and every digest along the way is
// stable.
func TestJournalFormatUpgradeAtCompaction(t *testing.T) {
	src := t.TempDir()
	jsonCfg := Config{Servers: testServers(4), IdleTimeout: 2, Dir: src, SnapshotEvery: -1, DisableFsync: true}
	c := mustOpenTB(t, jsonCfg)
	if _, err := c.Admit(context.Background(), []VMRequest{
		{ID: 1, Demand: model.Resources{CPU: 2, Mem: 3}, Start: 1, DurationMinutes: 30},
		{ID: 2, Demand: model.Resources{CPU: 1, Mem: 2}, Start: 2, DurationMinutes: 30},
	}); err != nil {
		t.Fatal(err)
	}
	want, err := c.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	// Capture the JSON log before Close compacts it away, and replay it
	// into a fresh directory under the binary configuration.
	jb, err := os.ReadFile(filepath.Join(src, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if len(jb) == 0 || jb[0] == binMagic[0] {
		t.Fatalf("setup produced a non-JSON journal (%d bytes)", len(jb))
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalName), jb, 0o644); err != nil {
		t.Fatal(err)
	}

	binCfg := jsonCfg
	binCfg.Dir = dir
	binCfg.JournalFormat = JournalFormatBinary
	c2 := mustOpenTB(t, binCfg)
	got, err := c2.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("binary-configured open of JSON log: digest %s, want %s", got, want)
	}
	// New appends still extend the JSON log: the format flips only when
	// compaction rewrites it from empty.
	if _, err := c2.Admit(context.Background(), []VMRequest{
		{ID: 3, Demand: model.Resources{CPU: 1, Mem: 1}, Start: 3, DurationMinutes: 10},
	}); err != nil {
		t.Fatal(err)
	}
	jb, err = os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.HasPrefix(jb, binMagic) {
		t.Fatal("journal flipped to binary before compaction")
	}
	if err := c2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	jb, err = os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jb, binMagic) {
		t.Fatalf("post-compaction journal = %q, want bare binary magic", jb)
	}
	if _, err := c2.Admit(context.Background(), []VMRequest{
		{ID: 4, Demand: model.Resources{CPU: 1, Mem: 1}, Start: 4, DurationMinutes: 10},
	}); err != nil {
		t.Fatal(err)
	}
	want, err = c2.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}

	c3 := mustOpenTB(t, binCfg)
	got, err = c3.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if err := c3.Close(); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("binary replay digest %s, want %s", got, want)
	}
}

// TestBinaryJournalDowngrade checks the reverse trip: a binary log
// opened under the default JSON configuration replays and, after
// compaction, returns to JSON.
func TestBinaryJournalDowngrade(t *testing.T) {
	dir := t.TempDir()
	binCfg := Config{Servers: testServers(4), IdleTimeout: 2, Dir: dir, SnapshotEvery: -1,
		DisableFsync: true, JournalFormat: JournalFormatBinary}
	c := mustOpenTB(t, binCfg)
	if _, err := c.Admit(context.Background(), []VMRequest{
		{ID: 1, Demand: model.Resources{CPU: 2, Mem: 3}, Start: 1, DurationMinutes: 30},
	}); err != nil {
		t.Fatal(err)
	}
	want, err := c.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	jb, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(jb, binMagic) {
		t.Fatal("setup produced a non-binary journal")
	}

	jsonCfg := binCfg
	jsonCfg.JournalFormat = JournalFormatJSON
	c2 := mustOpenTB(t, jsonCfg)
	got, err := c2.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("JSON-configured open of binary log: digest %s, want %s", got, want)
	}
	if err := c2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	jb, err = os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if len(jb) != 0 {
		t.Fatalf("post-compaction JSON journal holds %d bytes, want empty", len(jb))
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitCounters drives sequential admits through a real
// fsync-on journal and checks the group-commit accounting: every batch
// commit is acknowledged by a flush, and the flush count never exceeds
// the commit count. (Concurrent admits micro-batch into fewer commits,
// so the sequential stream is the deterministic way to count; actual
// fsync sharing under concurrency is pinned by
// TestGroupCommitCrashImage and the vmbench group benchmark.)
func TestGroupCommitCounters(t *testing.T) {
	dir := t.TempDir()
	c := mustOpenTB(t, Config{Servers: testServers(8), IdleTimeout: 2, Dir: dir, SnapshotEvery: -1,
		JournalFormat: JournalFormatBinary})
	const n = 24
	for i := 0; i < n; i++ {
		if _, err := c.Admit(context.Background(), []VMRequest{
			{ID: i + 1, Demand: model.Resources{CPU: 0.5, Mem: 0.5}, Start: 1, DurationMinutes: 10},
		}); err != nil {
			t.Fatal(err)
		}
	}
	groups, grouped := c.jr.groups.Load(), c.jr.grouped.Load()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if grouped < n {
		t.Fatalf("grouped commits = %d, want >= %d (one per sequential batch)", grouped, n)
	}
	if groups == 0 || groups > grouped {
		t.Fatalf("fsync groups = %d, grouped commits = %d: want 0 < groups <= grouped", groups, grouped)
	}
}
