package cluster

import (
	"context"
	"math"
	"testing"
	"time"

	"vmalloc/internal/model"
	"vmalloc/internal/obs"
)

// TestStageSpanEmission: with a span store configured, every traced
// admission leaves its stage timings as spans under the caller's trace
// id, linked to the flight-recorder decision via the same trace id —
// and an untraced call records nothing.
func TestStageSpanEmission(t *testing.T) {
	rec := obs.NewFlightRecorder(64)
	spans := obs.NewSpanStore(256)
	c := mustOpen(t, Config{Servers: testServers(2), IdleTimeout: 2, Recorder: rec, Spans: spans})
	defer c.Close()

	tc := obs.NewTraceContext()
	ctx := obs.WithTraceContext(context.Background(), tc)
	ctx = obs.WithRequestID(ctx, "trace-test-id")
	ctx = obs.WithDecodeSpan(ctx, 3*time.Millisecond)
	adms, err := c.Admit(ctx, []VMRequest{
		{ID: 1, Demand: model.Resources{CPU: 1, Mem: 1}, DurationMinutes: 30},
		{ID: 2, Demand: model.Resources{CPU: 999, Mem: 999}, DurationMinutes: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !adms[0].Accepted || adms[1].Accepted {
		t.Fatalf("admissions %+v", adms)
	}

	all := spans.Spans(obs.SpanFilter{TraceID: tc.TraceID})
	if len(all) == 0 {
		t.Fatal("no spans recorded for the trace")
	}
	byName := map[string][]obs.Span{}
	for _, sp := range all {
		if sp.Parent != tc.SpanID {
			t.Errorf("span %s parent %q, want caller span %q", sp.Name, sp.Parent, tc.SpanID)
		}
		if sp.Duration <= 0 || sp.SpanID == "" {
			t.Errorf("malformed span %+v", sp)
		}
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	// Both VMs went through decode and the scan; only the accepted one
	// committed.
	if got := len(byName[obs.SpanDecode]); got != 2 {
		t.Errorf("%d decode spans, want 2", got)
	}
	if got := len(byName[obs.SpanScan]); got != 2 {
		t.Errorf("%d scan spans, want 2", got)
	}
	if got := len(byName[obs.SpanCommit]); got != 1 {
		t.Errorf("%d commit spans, want 1", got)
	}
	commit := byName[obs.SpanCommit][0]
	if commit.VM != 1 || commit.Op != obs.OpAdmit || commit.Batch == 0 {
		t.Errorf("commit span %+v", commit)
	}

	// The flight-recorder decisions carry the same trace id, linking
	// /v1/debug/decisions to /v1/debug/traces.
	for _, d := range rec.Decisions(obs.Filter{}) {
		if d.TraceID != tc.TraceID {
			t.Errorf("decision for vm %d trace id %q, want %q", d.VM, d.TraceID, tc.TraceID)
		}
	}

	// An untraced admission must not grow the store.
	before := spans.Seq()
	if _, err := c.Admit(context.Background(), []VMRequest{
		{ID: 3, Demand: model.Resources{CPU: 1, Mem: 1}, DurationMinutes: 30},
	}); err != nil {
		t.Fatal(err)
	}
	if spans.Seq() != before {
		t.Fatalf("untraced admission recorded %d spans", spans.Seq()-before)
	}
}

// TestEnergySampling: the recorder's series is strictly monotone in
// clock, its newest cumulative total matches State().TotalEnergy
// exactly, and integrating the rate over the series reproduces the
// ledger's delta — the /v1/debug/energy acceptance property.
func TestEnergySampling(t *testing.T) {
	energy := obs.NewEnergyRecorder(128)
	c := mustOpen(t, Config{Servers: testServers(4), IdleTimeout: 2, Energy: energy})
	defer c.Close()

	ctx := context.Background()
	mustAdmit(t, c,
		VMRequest{ID: 1, Demand: model.Resources{CPU: 1, Mem: 1}, DurationMinutes: 120},
		VMRequest{ID: 2, Demand: model.Resources{CPU: 2, Mem: 2}, DurationMinutes: 120},
	)
	for _, minute := range []int{10, 20, 45} {
		if err := c.AdvanceTo(minute); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Release(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AdvanceTo(90); err != nil {
		t.Fatal(err)
	}

	samples := energy.Samples(-1, 0)
	if len(samples) < 4 {
		t.Fatalf("only %d samples recorded", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Clock <= samples[i-1].Clock {
			t.Fatalf("non-monotone clock series at %d: %+v", i, samples)
		}
		if samples[i].TotalWattMinutes < samples[i-1].TotalWattMinutes {
			t.Fatalf("energy ledger went backwards at %d", i)
		}
	}

	st := c.State()
	last := samples[len(samples)-1]
	if last.Clock != st.Now {
		t.Fatalf("newest sample clock %d, state now %d", last.Clock, st.Now)
	}
	if last.TotalWattMinutes != st.TotalEnergy {
		t.Fatalf("newest sample total %g, state energy %g (want exact equality)",
			last.TotalWattMinutes, st.TotalEnergy)
	}

	// ∫rate dt over the series == E_last − E_first, within float rounding.
	var integral float64
	for i := 1; i < len(samples); i++ {
		integral += samples[i].RateWatts * float64(samples[i].Clock-samples[i-1].Clock) / 60
	}
	want := last.TotalWattMinutes - samples[0].TotalWattMinutes
	if math.Abs(integral-want) > 1e-6*math.Max(1, math.Abs(want)) {
		t.Fatalf("rate integral %g != ΔTotal %g", integral, want)
	}

	// Utilization fields are populated while servers are active.
	if last.Active == 0 || last.Residents != 1 {
		t.Fatalf("newest sample fleet view %+v", last)
	}
	cu, ok := last.Classes["default"]
	if !ok || cu.Active != last.Active || cu.Utilization <= 0 || cu.Utilization > 1 {
		t.Fatalf("class usage %+v", last.Classes)
	}
}
