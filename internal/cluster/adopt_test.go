package cluster

import (
	"context"
	"errors"
	"testing"

	"vmalloc/internal/model"
	"vmalloc/internal/online"
)

func adoptVM(id, start, end int) model.VM {
	return model.VM{ID: id, Demand: model.Resources{CPU: 2, Mem: 2}, Start: start, End: end}
}

// TestAdoptPlacesAndJournals: an adoption lands on a server, preserves
// the (start, end) identity the original owner granted, survives a
// crash via journal replay (in both codecs), and bumps nextID past the
// adopted ID so later auto-assigned admissions cannot collide with it.
func TestAdoptPlacesAndJournals(t *testing.T) {
	for _, format := range []string{JournalFormatJSON, JournalFormatBinary} {
		t.Run(format, func(t *testing.T) {
			dir := t.TempDir()
			c := mustOpen(t, Config{Servers: testServers(2), IdleTimeout: 5, Dir: dir, JournalFormat: format, DisableFsync: true})
			if err := c.AdvanceTo(4); err != nil {
				t.Fatal(err)
			}
			// Requested start 1, actually started at 2 on the old owner.
			p, handoff, err := c.Adopt(context.Background(), adoptVM(42, 1, 20), 2)
			if err != nil {
				t.Fatal(err)
			}
			if p.Start != 2 || p.End() != 21 {
				t.Fatalf("adopted interval = (%d, %d), want (2, 21)", p.Start, p.End())
			}
			if handoff != 5 {
				t.Fatalf("handoff = %d, want 5 (next minute at clock 4)", handoff)
			}

			// Idempotent retry: same VM, same actual start → same placement,
			// no second adoption.
			p2, _, err := c.Adopt(context.Background(), adoptVM(42, 1, 20), 2)
			if err != nil {
				t.Fatal(err)
			}
			if p2 != p {
				t.Fatalf("retried adopt = %+v, first = %+v", p2, p)
			}
			// A conflicting adoption under the same ID is refused.
			var aie *AdoptInfeasibleError
			if _, _, err := c.Adopt(context.Background(), adoptVM(42, 1, 30), 2); !errors.As(err, &aie) {
				t.Fatalf("conflicting adopt: %v, want *AdoptInfeasibleError", err)
			}

			if got := c.Adopted(); got != 1 {
				t.Fatalf("adopted count = %d, want 1", got)
			}

			c.crash()
			r := mustOpen(t, Config{Servers: testServers(2), IdleTimeout: 5, Dir: dir, JournalFormat: format, DisableFsync: true})
			defer r.Close()
			rp, ok := findVM(r, 42)
			if !ok || rp.Start != 2 || rp.End() != 21 || rp.Server != p.Server {
				t.Fatalf("replayed placement = %+v (ok=%v), want %+v", rp, ok, p)
			}
			if got := r.Adopted(); got != 1 {
				t.Fatalf("replayed adopted count = %d, want 1", got)
			}
			// nextID replays past the adopted ID: an auto-ID admission must
			// not collide with 42.
			adms := mustAdmit(t, r, VMRequest{Demand: model.Resources{CPU: 1, Mem: 1}, Start: 4, DurationMinutes: 5})
			if adms[0].ID <= 42 {
				t.Fatalf("auto-assigned id %d ≤ adopted id 42", adms[0].ID)
			}
		})
	}
}

// findVM looks a VM up in the cluster state by ID.
func findVM(c *Cluster, id int) (online.PlacedVM, bool) {
	for _, p := range c.State().VMs {
		if p.VM.ID == id {
			return p, true
		}
	}
	return online.PlacedVM{}, false
}

// TestAdoptPrefersAwakeServers: the deterministic target choice takes an
// already-awake server over waking a sleeping one.
func TestAdoptPrefersAwakeServers(t *testing.T) {
	c := mustOpen(t, Config{Servers: testServers(2), IdleTimeout: 100})
	defer c.Close()
	// Wake server index 1 (ID 2) with a regular admission.
	adms := mustAdmit(t, c, VMRequest{ID: 1, Demand: model.Resources{CPU: 1, Mem: 1}, Start: 1, DurationMinutes: 50})
	if err := c.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	p, _, err := c.Adopt(context.Background(), adoptVM(50, 1, 40), 1)
	if err != nil {
		t.Fatal(err)
	}
	woken := adms[0].Server
	if got := c.cfg.Servers[p.Server].ID; got != woken {
		t.Fatalf("adoption landed on server %d, want the awake server %d", got, woken)
	}
}

// TestAdoptInfeasible: an interval entirely in the past (the VM departed
// between drain planning and execution) is a typed refusal, and the
// fleet is untouched.
func TestAdoptInfeasible(t *testing.T) {
	c := mustOpen(t, Config{Servers: testServers(1), IdleTimeout: 5})
	defer c.Close()
	if err := c.AdvanceTo(50); err != nil {
		t.Fatal(err)
	}
	var aie *AdoptInfeasibleError
	if _, _, err := c.Adopt(context.Background(), adoptVM(7, 1, 20), 1); !errors.As(err, &aie) {
		t.Fatalf("expired adopt: %v, want *AdoptInfeasibleError", err)
	}
	if aie.Reason != "no remaining minutes to host" {
		t.Fatalf("reason = %q", aie.Reason)
	}
	if got := c.Adopted(); got != 0 {
		t.Fatalf("adopted count = %d after refusal, want 0", got)
	}
}
