package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"vmalloc/internal/model"
)

// realJournal materializes a genuine journal by driving a journaled
// cluster through a small admit/release/tick history and reading the
// bytes back before Close can compact them into a snapshot.
func realJournal(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	c := mustOpenTB(tb, Config{Servers: testServers(4), IdleTimeout: 2, Dir: dir, SnapshotEvery: -1})
	reqs := []VMRequest{
		{ID: 1, Demand: model.Resources{CPU: 2, Mem: 3}, Start: 1, DurationMinutes: 10},
		{ID: 2, Demand: model.Resources{CPU: 8, Mem: 8}, Start: 2, DurationMinutes: 4},
		{ID: 3, Demand: model.Resources{CPU: 4, Mem: 4}, Start: 3, DurationMinutes: 20},
	}
	if _, err := c.Admit(context.Background(), reqs); err != nil {
		tb.Fatal(err)
	}
	if err := c.AdvanceTo(5); err != nil {
		tb.Fatal(err)
	}
	if _, err := c.Release(context.Background(), 1); err != nil {
		tb.Fatal(err)
	}
	if err := c.AdvanceTo(9); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		tb.Fatal(err)
	}
	if err := c.Close(); err != nil {
		tb.Fatal(err)
	}
	return data
}

// realMigrationJournal materializes a journal holding a genuine migrate
// record: two co-located VMs, one migrated onto a woken server.
func realMigrationJournal(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	c := mustOpenTB(tb, Config{Servers: testServers(4), IdleTimeout: 2, Dir: dir, SnapshotEvery: -1, MigrationCostPerGB: 0.5})
	reqs := []VMRequest{
		{ID: 1, Demand: model.Resources{CPU: 2, Mem: 2}, Start: 1, DurationMinutes: 20},
		{ID: 2, Demand: model.Resources{CPU: 2, Mem: 4}, Start: 1, DurationMinutes: 30},
	}
	if _, err := c.Admit(context.Background(), reqs); err != nil {
		tb.Fatal(err)
	}
	if err := c.AdvanceTo(5); err != nil {
		tb.Fatal(err)
	}
	onto := c.State().VMs[0].Server
	if _, err := c.Migrate(context.Background(), 2, testServers(4)[(onto+1)%4].ID); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		tb.Fatal(err)
	}
	if err := c.Close(); err != nil {
		tb.Fatal(err)
	}
	return data
}

func mustOpenTB(tb testing.TB, cfg Config) *Cluster {
	tb.Helper()
	c, err := Open(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// FuzzJournalReplay feeds arbitrary bytes to the journal reopen path:
// whatever the file holds, Open must either restore a consistent state
// (proved by a digest-stable close/reopen round trip) or refuse with
// ErrCorruptJournal — never panic, never silently half-restore.
func FuzzJournalReplay(f *testing.F) {
	base := realJournal(f)
	f.Add(base)
	f.Add([]byte{})
	f.Add([]byte("\n\n\n"))
	// Torn tail: the final record loses its last bytes (and its newline) —
	// an interrupted write, which reopen must truncate away, not refuse.
	if len(base) > 7 {
		f.Add(base[:len(base)-7])
	}
	// Mid-log corruption: garbage with history after it — lost records,
	// which reopen must refuse.
	if i := bytes.IndexByte(base, '\n'); i >= 0 {
		mut := append([]byte{}, base[:i+1]...)
		mut = append(mut, []byte("{\"seq\":GARBAGE\n")...)
		mut = append(mut, base[i+1:]...)
		f.Add(mut)
	}
	// Duplicate departure: a second release of a VM the log already
	// released — replay must refuse rather than corrupt the ledgers.
	f.Add(append(append([]byte{}, base...),
		[]byte(`{"seq":99,"op":"release","t":9,"id":1}`+"\n")...))
	// Admit with an interval that fails validation (end before start).
	f.Add([]byte(`{"seq":1,"op":"admit","t":2,"vm":{"id":9,"demand":{"cpu":1,"mem":1},"start":5,"end":3},"server":0,"start":5}` + "\n"))
	// Admit whose departure event time (end+1) would overflow MaxInt.
	f.Add([]byte(fmt.Sprintf(`{"seq":1,"op":"admit","t":1,"vm":{"id":9,"demand":{"cpu":1,"mem":1},"start":%d,"end":%d},"server":0,"start":%d}`+"\n",
		math.MaxInt-1, math.MaxInt, math.MaxInt-1)))
	// A migrate of a VM that was never admitted: opMigrate is a known op
	// now, so replay must refuse the inconsistent history, not panic.
	f.Add([]byte(`{"seq":1,"op":"migrate","t":3}` + "\n" + `{"seq":2,"op":"tick","t":4}` + "\n"))
	// A genuine history ending in a live migration must replay cleanly.
	migBase := realMigrationJournal(f)
	f.Add(migBase)
	// The same history with a second migrate whose recorded handoff cannot
	// reproduce: replay must refuse the cross-check, never half-apply.
	f.Add(append(append([]byte{}, migBase...),
		[]byte(`{"seq":99,"op":"migrate","t":6,"id":1,"server":2,"from":0,"handoff":3}`+"\n")...))
	// A migrate onto an out-of-range server index.
	f.Add(append(append([]byte{}, migBase...),
		[]byte(`{"seq":99,"op":"migrate","t":6,"id":1,"server":40,"from":0,"handoff":7}`+"\n")...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := Config{Servers: testServers(4), IdleTimeout: 2, Dir: dir, SnapshotEvery: -1}
		c, err := Open(cfg)
		if err != nil {
			if !errors.Is(err, ErrCorruptJournal) {
				t.Fatalf("refusal must wrap ErrCorruptJournal, got: %v", err)
			}
			return
		}
		// The journal was accepted: the restored state must be coherent
		// enough to survive a full snapshot/reopen round trip unchanged.
		want, err := c.StateDigest()
		if err != nil {
			t.Fatalf("restored cluster cannot serve state: %v", err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("closing restored cluster: %v", err)
		}
		c2, err := Open(cfg)
		if err != nil {
			t.Fatalf("reopening after clean close: %v", err)
		}
		got, err := c2.StateDigest()
		if err != nil {
			t.Fatal(err)
		}
		if err := c2.Close(); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("state digest changed across close/reopen: %s != %s", got, want)
		}
	})
}
