package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"vmalloc/internal/model"
)

// Binary journal format, version 1.
//
// The file opens with the 6-byte magic "\x00vmjl1" (the leading NUL can
// never begin a JSON journal, so the two formats are self-describing and
// a directory written by either codec replays under either
// configuration). After the magic the file is a sequence of frames:
//
//	u32le payload length | u32le CRC-32 (IEEE) of payload | payload
//
// Payloads are varint-packed records (see encodeBinaryRecord). Framing
// gives the reader the same recovery taxonomy as the JSON codec's
// newline framing:
//
//   - a frame that runs past EOF, or whose final-frame CRC mismatches,
//     is a torn tail — an interrupted write — and is truncated away;
//   - a CRC mismatch or undecodable payload with more data after it is
//     lost history and refuses the directory with ErrCorruptJournal;
//   - a length prefix beyond maxBinRecordLen means the framing itself
//     is gone (e.g. a flipped length byte) and is treated as corruption
//     rather than walking an absurd distance off the log.
const binJournalVersion = '1'

var binMagic = []byte{0x00, 'v', 'm', 'j', 'l', binJournalVersion}

// maxBinRecordLen bounds a single binary record's payload. Real records
// are tens of bytes; anything claiming a megabyte is a destroyed length
// prefix, not data.
const maxBinRecordLen = 1 << 20

// Binary op codes (the JSON codec uses the op strings).
const (
	binOpAdmit   = 1
	binOpRelease = 2
	binOpTick    = 3
	binOpMigrate = 4
	binOpAdopt   = 5
)

func binOpCode(op string) (byte, error) {
	switch op {
	case opAdmit:
		return binOpAdmit, nil
	case opRelease:
		return binOpRelease, nil
	case opTick:
		return binOpTick, nil
	case opMigrate:
		return binOpMigrate, nil
	case opAdopt:
		return binOpAdopt, nil
	}
	return 0, fmt.Errorf("cluster: unknown journal op %q", op)
}

func binOpName(code byte) (string, error) {
	switch code {
	case binOpAdmit:
		return opAdmit, nil
	case binOpRelease:
		return opRelease, nil
	case binOpTick:
		return opTick, nil
	case binOpMigrate:
		return opMigrate, nil
	case binOpAdopt:
		return opAdopt, nil
	}
	return "", fmt.Errorf("cluster: unknown binary op code %d", code)
}

// appendBinaryFrame appends r's framed binary encoding to buf and
// returns the extended slice.
func appendBinaryFrame(buf []byte, r record) ([]byte, error) {
	frameStart := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // length + CRC placeholders
	payloadStart := len(buf)
	var err error
	if buf, err = encodeBinaryRecord(buf, r); err != nil {
		return buf[:frameStart], err
	}
	payload := buf[payloadStart:]
	binary.LittleEndian.PutUint32(buf[frameStart:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[frameStart+4:], crc32.ChecksumIEEE(payload))
	return buf, nil
}

func encodeBinaryRecord(buf []byte, r record) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(r.Seq))
	code, err := binOpCode(r.Op)
	if err != nil {
		return buf, err
	}
	buf = append(buf, code)
	buf = binary.AppendVarint(buf, int64(r.T))
	switch code {
	case binOpAdmit:
		if r.VM == nil {
			return buf, fmt.Errorf("cluster: admit record without vm")
		}
		buf = binary.AppendVarint(buf, int64(r.Server))
		buf = binary.AppendVarint(buf, int64(r.Start))
		buf = binary.AppendVarint(buf, int64(r.VM.ID))
		buf = appendBinString(buf, r.VM.Type)
		buf = appendBinFloat(buf, r.VM.Demand.CPU)
		buf = appendBinFloat(buf, r.VM.Demand.Mem)
		buf = binary.AppendVarint(buf, int64(r.VM.Start))
		buf = binary.AppendVarint(buf, int64(r.VM.End))
	case binOpRelease:
		buf = binary.AppendVarint(buf, int64(r.ID))
	case binOpTick:
	case binOpMigrate:
		buf = binary.AppendVarint(buf, int64(r.ID))
		buf = binary.AppendVarint(buf, int64(r.Server))
		buf = binary.AppendVarint(buf, int64(r.From))
		buf = binary.AppendVarint(buf, int64(r.Handoff))
		buf = appendBinString(buf, r.Policy)
		buf = appendBinFloat(buf, r.Saved)
		buf = appendBinFloat(buf, r.Cost)
	case binOpAdopt:
		if r.VM == nil {
			return buf, fmt.Errorf("cluster: adopt record without vm")
		}
		buf = binary.AppendVarint(buf, int64(r.Server))
		buf = binary.AppendVarint(buf, int64(r.Start))
		buf = binary.AppendVarint(buf, int64(r.Handoff))
		buf = binary.AppendVarint(buf, int64(r.VM.ID))
		buf = appendBinString(buf, r.VM.Type)
		buf = appendBinFloat(buf, r.VM.Demand.CPU)
		buf = appendBinFloat(buf, r.VM.Demand.Mem)
		buf = binary.AppendVarint(buf, int64(r.VM.Start))
		buf = binary.AppendVarint(buf, int64(r.VM.End))
	}
	return buf, nil
}

// decodeBinaryRecord parses one CRC-verified payload. Trailing bytes
// after the record's last field are corruption, not padding: the CRC
// matched, so the writer really framed those bytes, and this decoder
// does not know them.
func decodeBinaryRecord(payload []byte) (record, error) {
	d := binDecoder{b: payload}
	var r record
	r.Seq = int64(d.uvarint())
	code := d.byte()
	r.T = int(d.varint())
	name, err := binOpName(code)
	if d.err == nil && err != nil {
		return record{}, err
	}
	r.Op = name
	switch code {
	case binOpAdmit:
		r.Server = int(d.varint())
		r.Start = int(d.varint())
		vm := &model.VM{}
		vm.ID = int(d.varint())
		vm.Type = d.string()
		vm.Demand.CPU = d.float()
		vm.Demand.Mem = d.float()
		vm.Start = int(d.varint())
		vm.End = int(d.varint())
		r.VM = vm
	case binOpRelease:
		r.ID = int(d.varint())
	case binOpMigrate:
		r.ID = int(d.varint())
		r.Server = int(d.varint())
		r.From = int(d.varint())
		r.Handoff = int(d.varint())
		r.Policy = d.string()
		r.Saved = d.float()
		r.Cost = d.float()
	case binOpAdopt:
		r.Server = int(d.varint())
		r.Start = int(d.varint())
		r.Handoff = int(d.varint())
		vm := &model.VM{}
		vm.ID = int(d.varint())
		vm.Type = d.string()
		vm.Demand.CPU = d.float()
		vm.Demand.Mem = d.float()
		vm.Start = int(d.varint())
		vm.End = int(d.varint())
		r.VM = vm
	}
	if d.err != nil {
		return record{}, d.err
	}
	if len(d.b) != 0 {
		return record{}, fmt.Errorf("cluster: %d trailing bytes after binary record", len(d.b))
	}
	return r, nil
}

// readBinaryRecords parses a binary journal body (b starts with the
// magic), returning the clean records and the byte offset up to which
// the file is clean, exactly like the JSON reader.
func readBinaryRecords(b []byte) ([]record, int64, error) {
	var recs []record
	off := len(binMagic)
	clean := int64(off)
	for off < len(b) {
		if len(b)-off < 8 {
			break // torn frame header
		}
		ln := binary.LittleEndian.Uint32(b[off:])
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if ln > maxBinRecordLen {
			return nil, 0, fmt.Errorf("%w: binary record at byte %d claims %d bytes; framing lost", ErrCorruptJournal, off, ln)
		}
		end := off + 8 + int(ln)
		if end > len(b) {
			break // torn tail: the frame was never fully written
		}
		payload := b[off+8 : end]
		if crc32.ChecksumIEEE(payload) != sum {
			if end == len(b) {
				break // checksum of the final frame: torn write
			}
			return nil, 0, fmt.Errorf("%w: binary record at byte %d fails its checksum", ErrCorruptJournal, off)
		}
		r, err := decodeBinaryRecord(payload)
		if err != nil {
			// The CRC matched, so this is not an interrupted write — the
			// log holds a frame this reader cannot understand.
			return nil, 0, fmt.Errorf("%w: binary record at byte %d: %v", ErrCorruptJournal, off, err)
		}
		recs = append(recs, r)
		off = end
		clean = int64(off)
	}
	return recs, clean, nil
}

func appendBinString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBinFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

// binDecoder reads the varint-packed payload fields, latching the first
// error so call sites stay linear.
type binDecoder struct {
	b   []byte
	err error
}

func (d *binDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("cluster: truncated binary record payload")
	}
}

func (d *binDecoder) byte() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *binDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *binDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *binDecoder) string() string {
	n := d.uvarint()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *binDecoder) float() float64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}
