package cluster

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"vmalloc/internal/model"
	"vmalloc/internal/online"
)

// fleetMirror replays the cluster's request stream directly against a
// bare online.Fleet with the same policy, replicating the cluster's
// normalize semantics (clock floor at minute 1, past starts clamped to
// now, residency check) without any of its batching, journaling or
// locking machinery.
type fleetMirror struct {
	fleet *online.Fleet
	pol   online.Policy
}

func newFleetMirror(servers []model.Server, idleTimeout int) *fleetMirror {
	return &fleetMirror{
		fleet: online.NewFleet(servers, idleTimeout),
		pol:   &online.MinCostPolicy{},
	}
}

// admit mirrors normalize + place + commit for a single-request batch.
// It returns the admission the cluster is expected to produce.
func (m *fleetMirror) admit(req VMRequest) Admission {
	adm := Admission{ID: req.ID}
	now := m.fleet.Now()
	if now < 1 {
		now = 1
	}
	start := req.Start
	if start < now {
		start = now
	}
	vm := model.VM{
		ID:     req.ID,
		Type:   req.Type,
		Demand: req.Demand,
		Start:  start,
		End:    start + req.DurationMinutes - 1,
	}
	if _, resident := m.fleet.Resident(vm.ID); resident {
		return adm // rejected; the cluster fills in a reason
	}
	m.fleet.AdvanceTo(vm.Start)
	i, err := m.pol.Place(m.fleet.View(), vm)
	if err != nil {
		return adm
	}
	s, err := m.fleet.Commit(i, vm)
	if err != nil {
		return adm
	}
	adm.Accepted = true
	adm.Server = m.fleet.View().Server(i).ID
	adm.Start = s
	adm.End = s + vm.Duration() - 1
	return adm
}

// release mirrors Cluster.Release: residency check, then the fleet op.
func (m *fleetMirror) release(id int) (online.PlacedVM, bool) {
	if _, ok := m.fleet.Resident(id); !ok {
		return online.PlacedVM{}, false
	}
	p, err := m.fleet.Release(id)
	if err != nil {
		return online.PlacedVM{}, false
	}
	return p, true
}

// TestClusterMatchesFleetMetamorphic drives seeded random
// admit/release/advance sequences through a volatile Cluster and the
// bare-fleet mirror, and demands identical behaviour op by op and in the
// final accounting — the cluster's service layer (batching, dispatch,
// journaling hooks) must be semantically invisible.
func TestClusterMatchesFleetMetamorphic(t *testing.T) {
	types := model.VMTypeCatalog()
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		servers := testServers(3 + rng.Intn(5))
		c := mustOpen(t, Config{Servers: servers, IdleTimeout: 2})
		mirror := newFleetMirror(servers, 2)

		clock := 1
		nextID := 1
		var issued []int
		const ops = 400
		for op := 0; op < ops; op++ {
			switch k := rng.Float64(); {
			case k < 0.55: // admit
				vt := types[rng.Intn(len(types))]
				req := VMRequest{
					ID:              nextID,
					Type:            vt.Name,
					Demand:          vt.Resources(),
					Start:           clock + rng.Intn(4) - 1, // sometimes in the past: exercises clamping
					DurationMinutes: 1 + rng.Intn(40),
				}
				nextID++
				issued = append(issued, req.ID)
				adms, err := c.Admit(context.Background(), []VMRequest{req})
				if err != nil {
					t.Fatalf("seed %d op %d: admit: %v", seed, op, err)
				}
				want := mirror.admit(req)
				got := adms[0]
				got.Reason = "" // the mirror predicts outcomes, not prose
				want.Reason = ""
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d op %d: admission diverged\ncluster: %+v\nmirror:  %+v", seed, op, got, want)
				}
			case k < 0.85 && len(issued) > 0: // release (possibly gone or never admitted)
				id := issued[rng.Intn(len(issued))]
				p, err := c.Release(context.Background(), id)
				wantP, wantOK := mirror.release(id)
				var nre *NotResidentError
				switch {
				case err == nil && !wantOK:
					t.Fatalf("seed %d op %d: cluster released vm %d, mirror says not resident", seed, op, id)
				case err != nil && wantOK:
					t.Fatalf("seed %d op %d: cluster refused release of vm %d (%v), mirror released it", seed, op, id, err)
				case err != nil && !errors.As(err, &nre):
					t.Fatalf("seed %d op %d: release error is not *NotResidentError: %v", seed, op, err)
				case err == nil && (p.Server != wantP.Server || p.Start != wantP.Start || p.VM.ID != wantP.VM.ID):
					t.Fatalf("seed %d op %d: released placement diverged\ncluster: %+v\nmirror:  %+v", seed, op, p, wantP)
				}
			default: // advance
				clock += rng.Intn(6)
				if err := c.AdvanceTo(clock); err != nil {
					t.Fatalf("seed %d op %d: advance: %v", seed, op, err)
				}
				mirror.fleet.AdvanceTo(clock)
			}
		}

		st := c.State()
		fl := mirror.fleet
		if st.Now != fl.Now() || st.Admitted != fl.Admitted() || st.Released != fl.Released() {
			t.Fatalf("seed %d: counters diverged: cluster now=%d admitted=%d released=%d, mirror now=%d admitted=%d released=%d",
				seed, st.Now, st.Admitted, st.Released, fl.Now(), fl.Admitted(), fl.Released())
		}
		if st.Transitions != fl.Transitions() || st.ServersUsed != fl.ServersUsed() {
			t.Fatalf("seed %d: transitions/servers diverged: %d/%d vs %d/%d",
				seed, st.Transitions, st.ServersUsed, fl.Transitions(), fl.ServersUsed())
		}
		if want := fl.EnergyAt(fl.Now()).Total(); st.TotalEnergy != want {
			t.Fatalf("seed %d: energy diverged: cluster %.6f, mirror %.6f", seed, st.TotalEnergy, want)
		}
		if !reflect.DeepEqual(st.VMs, fl.Residents()) {
			t.Fatalf("seed %d: resident sets diverged\ncluster: %+v\nmirror:  %+v", seed, st.VMs, fl.Residents())
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
