package cluster

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"vmalloc/internal/api"
	"vmalloc/internal/model"
	"vmalloc/internal/online"
	"vmalloc/internal/workload"
)

// migrationsOf returns the lifetime count and history, failing the test on
// a nil cluster.
func migrationsOf(t *testing.T, c *Cluster) (int, []api.MigrationRecord) {
	t.Helper()
	return c.Migrations()
}

// TestClusterMigrateDirect: a manual migration moves a resident VM,
// journals a migrate record, and both crash replay and snapshot
// compaction restore a byte-identical state and migration history.
func TestClusterMigrateDirect(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Servers: testServers(3), IdleTimeout: 2, Dir: dir, SnapshotEvery: -1,
		MigrationCostPerGB: 0.5,
	}
	c := mustOpen(t, cfg)
	ctx := context.Background()

	// Two co-located VMs on the first server the policy picks.
	mustAdmit(t, c,
		VMRequest{ID: 1, Demand: model.Resources{CPU: 2, Mem: 2}, Start: 1, DurationMinutes: 50},
		VMRequest{ID: 2, Demand: model.Resources{CPU: 2, Mem: 4}, Start: 1, DurationMinutes: 60},
	)
	if err := c.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}

	// Error surface before any mutation.
	if _, err := c.Migrate(ctx, 99, 2); !errors.As(err, new(*NotResidentError)) {
		t.Errorf("migrate of unknown vm = %v, want NotResidentError", err)
	}
	if _, err := c.Migrate(ctx, 1, 99); !errors.As(err, new(*MigrationInfeasibleError)) {
		t.Errorf("migrate to unknown server = %v, want MigrationInfeasibleError", err)
	}
	st := c.State()
	onto := st.VMs[0].Server // index of the hosting server
	if _, err := c.Migrate(ctx, 1, cfg.Servers[onto].ID); !errors.As(err, new(*MigrationInfeasibleError)) {
		t.Errorf("migrate onto the hosting server = %v, want MigrationInfeasibleError", err)
	}

	// Move VM 2 to a sleeping server: the migration wakes it.
	target := cfg.Servers[(onto+1)%3].ID
	rec, err := c.Migrate(ctx, 2, target)
	if err != nil {
		t.Fatal(err)
	}
	// The first admission woke a sleeping server (transition time 1), so
	// both VMs actually started at minute 2.
	want := api.MigrationRecord{
		Seq: rec.Seq, VM: 2, From: cfg.Servers[onto].ID, To: target,
		Time: 5, Handoff: 6, Start: 2, End: 61,
		Policy: "manual", CostWattMinutes: 0.5 * 4,
	}
	if rec != want {
		t.Fatalf("migration record %+v, want %+v", rec, want)
	}
	st = c.State()
	if st.Migrations != 1 || st.MigrationSaved != 0 {
		t.Fatalf("state migrations=%d saved=%g, want 1 and 0", st.Migrations, st.MigrationSaved)
	}
	if n, hist := migrationsOf(t, c); n != 1 || len(hist) != 1 || hist[0] != rec {
		t.Fatalf("Migrations() = %d %+v, want the one executed record", n, hist)
	}

	// Crash replay reproduces state and history byte-identically.
	wantState := stateJSON(t, c)
	c.crash()
	restored := mustOpen(t, cfg)
	if got := stateJSON(t, restored); !bytes.Equal(got, wantState) {
		t.Errorf("crash replay diverged:\n--- got\n%s\n--- want\n%s", got, wantState)
	}
	if n, hist := migrationsOf(t, restored); n != 1 || len(hist) != 1 || hist[0] != rec {
		t.Fatalf("replayed history = %d %+v, want the original record", n, hist)
	}

	// Graceful close compacts into a snapshot; the history must survive it.
	if err := restored.Close(); err != nil {
		t.Fatal(err)
	}
	again := mustOpen(t, cfg)
	defer again.Close()
	if got := stateJSON(t, again); !bytes.Equal(got, wantState) {
		t.Errorf("post-compaction state diverged:\n--- got\n%s\n--- want\n%s", got, wantState)
	}
	if n, hist := migrationsOf(t, again); n != 1 || len(hist) != 1 || hist[0] != rec {
		t.Fatalf("post-compaction history = %d %+v, want the original record", n, hist)
	}
}

// TestConsolidatePinned pins one fully hand-computed consolidation pass:
// two half-empty servers, one drain, an exact pay-for-itself net saving.
func TestConsolidatePinned(t *testing.T) {
	cfg := Config{
		Servers: testServers(3), IdleTimeout: 2,
		MigrationCostPerGB: 0.5,
	}
	c := mustOpen(t, cfg)
	defer c.Close()
	ctx := context.Background()

	// Both VMs land on one server; a manual migration splits them so two
	// servers sit at 20% utilisation each.
	mustAdmit(t, c,
		VMRequest{ID: 1, Demand: model.Resources{CPU: 2, Mem: 2}, Start: 1, DurationMinutes: 50}, // end 50
		VMRequest{ID: 2, Demand: model.Resources{CPU: 2, Mem: 2}, Start: 1, DurationMinutes: 60}, // end 60
	)
	src := c.State().VMs[0].Server
	other := (src + 1) % 3
	if _, err := c.Migrate(ctx, 2, cfg.Servers[other].ID); err != nil {
		t.Fatal(err)
	}
	if err := c.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}

	res, err := c.Consolidate(ctx, ConsolidateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != api.PolicyMinMigrationTime {
		t.Errorf("default policy = %q", res.Policy)
	}
	// One donor evaluated: both servers are under-utilised, but the second
	// received the first drain and is excluded from donor consideration.
	if res.Donors != 1 || res.Executed != 1 || len(res.Moves) != 1 {
		t.Fatalf("pass outcome %+v, want 1 donor, 1 move", res)
	}
	// Equal memory on both donors: the tie breaks to the lower index, so
	// VM 1's server drains onto VM 2's. Both VMs started at minute 2 (the
	// first admission woke a sleeping server), so VM 1 ends at 51. The
	// saving is exact: idle saved 100·(51+1−10), zero run re-pricing
	// (identical servers), zero idle extension (the target outlives the
	// migrant), cost 0.5·2.
	wantNet := 100.0*(51+1-10) - 0.5*2
	if res.Saved != wantNet {
		t.Errorf("net saving %g, want %g", res.Saved, wantNet)
	}
	m := res.Moves[0]
	if m.VM != 1 || m.From != cfg.Servers[src].ID || m.To != cfg.Servers[other].ID {
		t.Errorf("move %+v, want vm 1 from server %d to %d", m, cfg.Servers[src].ID, cfg.Servers[other].ID)
	}
	if m.Time != 10 || m.Handoff != 11 || m.Start != 2 || m.End != 51 {
		t.Errorf("move timing %+v, want time 10, handoff 11, (start,end)=(2,51)", m)
	}
	if m.Policy != api.PolicyMinMigrationTime || m.SavedWattMinutes != wantNet || m.CostWattMinutes != 1 {
		t.Errorf("move economics %+v", m)
	}
	st := c.State()
	if st.Migrations != 2 || st.MigrationSaved != wantNet {
		t.Errorf("state migrations=%d saved=%g, want 2 and %g", st.Migrations, st.MigrationSaved, wantNet)
	}
	// The migrated VM kept its identity.
	for _, p := range st.VMs {
		if p.VM.ID == 1 && (p.Start != 2 || p.End() != 51) {
			t.Errorf("vm 1 identity changed: start %d end %d", p.Start, p.End())
		}
	}

	// A second pass finds nothing left worth moving: the remaining server
	// is a receiver of this pass — but even fresh, draining it cannot pay
	// for itself (there is no cheaper host).
	res2, err := c.Consolidate(ctx, ConsolidateOptions{Policy: api.PolicyMinUtilization})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Executed != 0 {
		t.Errorf("second pass executed %d moves, want 0", res2.Executed)
	}
}

// TestConsolidateBusy: a pass racing an in-flight pass fails fast with
// ErrConsolidationBusy instead of queueing.
func TestConsolidateBusy(t *testing.T) {
	c := mustOpen(t, Config{Servers: testServers(2), IdleTimeout: 2})
	defer c.Close()
	c.consolidating.Store(true)
	if _, err := c.Consolidate(context.Background(), ConsolidateOptions{}); !errors.Is(err, ErrConsolidationBusy) {
		t.Fatalf("racing pass = %v, want ErrConsolidationBusy", err)
	}
	c.consolidating.Store(false)
	if _, err := c.Consolidate(context.Background(), ConsolidateOptions{}); err != nil {
		t.Fatalf("pass after release: %v", err)
	}
}

// TestConsolidateNeverWorse is the metamorphic guarantee, pinned over
// seeded random workloads and both policies: a consolidated cluster never
// ends with more total energy than an identical unconsolidated one, never
// changes any VM's (start, end), and the planner's saving estimate equals
// the realised energy difference exactly (the system is closed after the
// passes: only the clock advances).
func TestConsolidateNeverWorse(t *testing.T) {
	var executedTotal int
	for _, seed := range []int64{1, 2, 5, 9, 12, 31} {
		rng := rand.New(rand.NewSource(seed))
		inst, err := workload.Generate(
			workload.Spec{NumVMs: 60, MeanInterArrival: 4, MeanLength: 80},
			workload.FleetSpec{NumServers: 12, TransitionTime: 2},
			seed,
		)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Servers: inst.Servers, IdleTimeout: 3, MigrationCostPerGB: 0.25}
		base := mustOpen(t, cfg)
		cons := mustOpen(t, cfg)
		ctx := context.Background()

		lastEnd := 0
		for _, v := range online.ArrivalOrder(inst.VMs) {
			req := VMRequest{ID: v.ID, Demand: v.Demand, Start: v.Start, DurationMinutes: v.Duration()}
			a1, err1 := base.Admit(ctx, []VMRequest{req})
			a2, err2 := cons.Admit(ctx, []VMRequest{req})
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if a1[0] != a2[0] {
				t.Fatalf("seed %d: admissions diverged before any migration: %+v vs %+v", seed, a1[0], a2[0])
			}
			if a1[0].Accepted && a1[0].End > lastEnd {
				lastEnd = a1[0].End
			}
		}
		// Release a third of the residents in both clusters: fragmentation
		// is what gives consolidation something to do.
		for _, p := range base.State().VMs {
			if rng.Intn(3) != 0 {
				continue
			}
			if _, err := base.Release(ctx, p.VM.ID); err != nil {
				t.Fatal(err)
			}
			if _, err := cons.Release(ctx, p.VM.ID); err != nil {
				t.Fatal(err)
			}
		}
		mid := base.Now() + 5
		if err := base.AdvanceTo(mid); err != nil {
			t.Fatal(err)
		}
		if err := cons.AdvanceTo(mid); err != nil {
			t.Fatal(err)
		}

		policy := api.PolicyMinMigrationTime
		if seed%2 == 0 {
			policy = api.PolicyMinUtilization
		}
		var saved, costs float64
		for pass := 0; pass < 4; pass++ {
			res, err := cons.Consolidate(ctx, ConsolidateOptions{Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			saved += res.Saved
			for _, m := range res.Moves {
				costs += m.CostWattMinutes
			}
			executedTotal += res.Executed
			if res.Executed == 0 {
				break
			}
		}

		// Identity: same resident VMs with the same (start, end) — only the
		// hosting server may differ.
		ident := func(c *Cluster) map[int][2]int {
			out := map[int][2]int{}
			for _, p := range c.State().VMs {
				out[p.VM.ID] = [2]int{p.Start, p.End()}
			}
			return out
		}
		if got, want := ident(cons), ident(base); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: consolidation changed a VM identity:\ncons: %v\nbase: %v", seed, got, want)
		}

		// Drain both to the far future and compare realised energy.
		far := lastEnd + cfg.IdleTimeout + 10
		if err := base.AdvanceTo(far); err != nil {
			t.Fatal(err)
		}
		if err := cons.AdvanceTo(far); err != nil {
			t.Fatal(err)
		}
		eBase := base.State().TotalEnergy
		eCons := cons.State().TotalEnergy
		eps := 1e-6 * (1 + math.Abs(eBase))
		if eCons > eBase+eps {
			t.Errorf("seed %d: consolidation increased energy: %.6f > %.6f (saved %.6f)", seed, eCons, eBase, saved)
		}
		// The fleet's Eq. 8 books never consume the migration overhead — it
		// is a planner-side charge — so the realised watt-minute saving is
		// exactly the reported net plus the charged costs.
		if diff := eBase - eCons; math.Abs(diff-(saved+costs)) > eps {
			t.Errorf("seed %d: realised saving %.6f diverged from planner estimate %.6f + costs %.6f", seed, diff, saved, costs)
		}
		if err := base.Close(); err != nil {
			t.Fatal(err)
		}
		if err := cons.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if executedTotal == 0 {
		t.Fatal("no seed executed a single migration; the property was never exercised")
	}
}

// TestClusterReplayWithMigrations is the durability property for the full
// op mix: random interleaved admit/release/advance/consolidate histories
// must replay from the journal to a byte-identical state and migration
// history, across both a crash and a graceful compacting close.
func TestClusterReplayWithMigrations(t *testing.T) {
	for _, seed := range []int64{3, 8, 21} {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		cfg := Config{
			Servers: testServers(6), IdleTimeout: 2, Dir: dir, SnapshotEvery: -1,
			MigrationCostPerGB: 0.1,
		}
		c := mustOpen(t, cfg)
		ctx := context.Background()

		clock := 1
		nextID := 1
		var issued []int
		for op := 0; op < 150; op++ {
			switch k := rng.Float64(); {
			case k < 0.5: // admit (may be rejected; rejections are not journaled)
				req := VMRequest{
					ID:              nextID,
					Demand:          model.Resources{CPU: float64(1 + rng.Intn(4)), Mem: float64(1 + rng.Intn(4))},
					Start:           clock + rng.Intn(3),
					DurationMinutes: 1 + rng.Intn(50),
				}
				nextID++
				issued = append(issued, req.ID)
				if _, err := c.Admit(ctx, []VMRequest{req}); err != nil {
					t.Fatal(err)
				}
			case k < 0.65 && len(issued) > 0: // release, possibly of a gone VM
				id := issued[rng.Intn(len(issued))]
				if _, err := c.Release(ctx, id); err != nil && !errors.As(err, new(*NotResidentError)) {
					t.Fatal(err)
				}
			case k < 0.8: // advance
				clock += rng.Intn(5)
				if err := c.AdvanceTo(clock); err != nil {
					t.Fatal(err)
				}
			default: // consolidate
				policy := api.PolicyMinMigrationTime
				if rng.Intn(2) == 0 {
					policy = api.PolicyMinUtilization
				}
				if _, err := c.Consolidate(ctx, ConsolidateOptions{Policy: policy}); err != nil {
					t.Fatal(err)
				}
			}
		}
		want := stateJSON(t, c)
		wantN, wantHist := migrationsOf(t, c)
		c.crash()

		restored := mustOpen(t, cfg)
		if got := stateJSON(t, restored); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: crash replay diverged:\n--- got\n%s\n--- want\n%s", seed, got, want)
		}
		if n, hist := migrationsOf(t, restored); n != wantN || !reflect.DeepEqual(hist, wantHist) {
			t.Fatalf("seed %d: replayed migration history diverged: %d vs %d records", seed, len(hist), len(wantHist))
		}
		if err := restored.Close(); err != nil { // compacts into a snapshot
			t.Fatal(err)
		}
		again := mustOpen(t, cfg)
		if got := stateJSON(t, again); !bytes.Equal(got, want) {
			t.Fatalf("seed %d: post-compaction state diverged", seed)
		}
		if n, hist := migrationsOf(t, again); n != wantN || !reflect.DeepEqual(hist, wantHist) {
			t.Fatalf("seed %d: post-compaction migration history diverged", seed)
		}
		if err := again.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
