package cluster

import (
	"bytes"
	"fmt"
	"io"
	"strconv"

	"vmalloc/internal/obs"
	"vmalloc/internal/online"
)

// metricsPrefix namespaces every exported series.
const metricsPrefix = "vmalloc_cluster"

// metrics is the cluster's runtime-only instrumentation: counters and
// histograms that are deliberately not journaled (a restart starts them
// from zero; durable facts live in State).
type metrics struct {
	admissions     uint64
	rejections     uint64
	releases       uint64
	migrations     uint64
	adoptions      uint64
	consolidations uint64
	migrationSaved float64 // summed planner net-saving estimates, watt-minutes
	batches        uint64
	snapshots      uint64
	snapshotErrors uint64
	journalErrors  uint64
	candidates     int64
	infeasible     int64
	// indexPruned counts candidate servers the feasibility index skipped
	// without scoring (a subset of infeasible: pruned pairs are also
	// counted there, so candidate totals stay comparable with the index
	// off).
	indexPruned uint64
	batchSize   *obs.Histogram
	scanSeconds *obs.Histogram
	// consolidateSeconds observes each consolidation pass's wall time
	// (planning and execution, under the cluster lock).
	consolidateSeconds *obs.Histogram
	// queueWaitSeconds observes, per Admit call, how long the call sat in
	// the micro-batch queue before its batch started; fsyncSeconds
	// observes each batch's journal fsync. Both are the cumulative
	// /metrics view of the per-decision stage timings the flight recorder
	// keeps.
	queueWaitSeconds *obs.Histogram
	fsyncSeconds     *obs.Histogram
}

func newMetrics() metrics {
	return metrics{
		batchSize:          obs.NewHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256),
		scanSeconds:        obs.NewHistogram(1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1),
		queueWaitSeconds:   obs.NewHistogram(1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1),
		fsyncSeconds:       obs.NewHistogram(1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1),
		consolidateSeconds: obs.NewHistogram(1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1),
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteMetrics writes the cluster's metrics in Prometheus text exposition
// format: admission/rejection/release/batch counters, batch-size and
// scan-time histograms (fed from the scan engine's AllocStats), the
// cumulative energy components in watt-minutes, and each server's power
// state.
func (c *Cluster) WriteMetrics(w io.Writer) error {
	c.mu.Lock()
	var buf bytes.Buffer
	counter := func(name, help string, v uint64) {
		full := metricsPrefix + "_" + name
		fmt.Fprintf(&buf, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", full, help, full, full, v)
	}
	gauge := func(name, help, value string) {
		full := metricsPrefix + "_" + name
		fmt.Fprintf(&buf, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", full, help, full, full, value)
	}
	counter("admissions_total", "VMs admitted over the cluster's lifetime.", c.met.admissions)
	counter("rejections_total", "Admission requests rejected (no capacity or invalid).", c.met.rejections)
	counter("releases_total", "VMs released before their scheduled end.", c.met.releases)
	counter("migrations_total", "Live migrations executed (consolidation passes and direct requests).", c.met.migrations)
	counter("adoptions_total", "VMs adopted from another shard during a topology rebalance.", c.met.adoptions)
	counter("consolidations_total", "Consolidation passes run.", c.met.consolidations)
	full := metricsPrefix + "_migration_energy_saved_watt_minutes"
	fmt.Fprintf(&buf, "# HELP %s Net energy saved by executed migrations (planner's Eq. 17 estimate), in watt-minutes.\n# TYPE %s counter\n%s %s\n",
		full, full, full, formatFloat(c.met.migrationSaved))
	counter("batches_total", "Admission batches processed.", c.met.batches)
	counter("snapshots_total", "Snapshots written.", c.met.snapshots)
	counter("snapshot_errors_total", "Snapshot attempts that failed.", c.met.snapshotErrors)
	counter("journal_errors_total", "Journal writes that failed (each breaks the journal until a snapshot heals it).", c.met.journalErrors)
	broken := "0"
	if c.jfail != nil {
		broken = "1"
	}
	gauge("journal_broken", "1 while the journal is broken and mutations are refused.", broken)
	counter("scan_candidates_total", "Candidate (VM, server) pairs evaluated.", uint64(c.met.candidates))
	counter("scan_infeasible_total", "Candidate pairs rejected as infeasible.", uint64(c.met.infeasible))
	counter("scan_index_pruned_total", "Candidate servers the feasibility index skipped without scoring.", c.met.indexPruned)
	var groups, grouped uint64
	format := ""
	if c.jr != nil {
		groups = c.jr.groups.Load()
		grouped = c.jr.grouped.Load()
		format = JournalFormatJSON
		if c.jr.binary {
			format = JournalFormatBinary
		}
	}
	counter("fsync_groups_total", "Journal group-commit fsyncs executed.", groups)
	counter("fsync_group_commits_total", "Journal commits acknowledged by group-commit fsyncs.", grouped)
	if format != "" {
		full := metricsPrefix + "_journal_format"
		fmt.Fprintf(&buf, "# HELP %s The journal's current on-disk codec.\n# TYPE %s gauge\n%s{format=%q} 1\n",
			full, full, full, format)
	}

	c.met.batchSize.Write(&buf, metricsPrefix+"_batch_size", "VM requests per admission batch.")
	c.met.scanSeconds.Write(&buf, metricsPrefix+"_scan_seconds", "Candidate-scan wall time per batch, in seconds.")
	c.met.consolidateSeconds.Write(&buf, metricsPrefix+"_consolidate_seconds", "Consolidation pass wall time (plan and execute), in seconds.")
	c.met.queueWaitSeconds.Write(&buf, metricsPrefix+"_queue_wait_seconds", "Per-call wait in the micro-batch queue before batch processing started, in seconds.")
	c.met.fsyncSeconds.Write(&buf, metricsPrefix+"_fsync_seconds", "Journal fsync wall time per batch, in seconds.")

	now := c.fleet.Now()
	gauge("clock_minutes", "The fleet clock, in minutes.", strconv.Itoa(now))
	gauge("resident_vms", "VMs currently admitted.", strconv.Itoa(len(c.fleet.Residents())))
	gauge("servers_used", "Servers that hosted at least one VM.", strconv.Itoa(c.fleet.ServersUsed()))
	gauge("transitions", "Power-saving to active wake-ups.", strconv.Itoa(c.fleet.Transitions()))
	gauge("start_delay_minutes_total", "Summed VM start delay, in minutes.", strconv.Itoa(c.fleet.StartDelayTotal()))
	gauge("start_delay_minutes_max", "Worst single VM start delay, in minutes.", strconv.Itoa(c.fleet.MaxStartDelay()))
	gauge("scan_workers", "Candidate-scan worker pool size.", strconv.Itoa(c.scan.Workers()))

	b := c.fleet.EnergyAt(now)
	full = metricsPrefix + "_energy_watt_minutes"
	fmt.Fprintf(&buf, "# HELP %s Cumulative energy by component, in watt-minutes.\n# TYPE %s gauge\n", full, full)
	fmt.Fprintf(&buf, "%s{component=\"run\"} %s\n", full, formatFloat(b.Run))
	fmt.Fprintf(&buf, "%s{component=\"idle\"} %s\n", full, formatFloat(b.Idle))
	fmt.Fprintf(&buf, "%s{component=\"transition\"} %s\n", full, formatFloat(b.Transition))
	fmt.Fprintf(&buf, "%s{component=\"total\"} %s\n", full, formatFloat(b.Total()))

	fv := c.fleet.View()
	perState := map[online.State]int{}
	full = metricsPrefix + "_server_state"
	fmt.Fprintf(&buf, "# HELP %s Per-server power state (1 power-saving, 2 waking, 3 active).\n# TYPE %s gauge\n", full, full)
	for i := 0; i < fv.NumServers(); i++ {
		st := fv.StateOf(i)
		perState[st]++
		fmt.Fprintf(&buf, "%s{server=\"%d\"} %d\n", full, fv.Server(i).ID, int(st))
	}
	full = metricsPrefix + "_servers"
	fmt.Fprintf(&buf, "# HELP %s Servers by power state.\n# TYPE %s gauge\n", full, full)
	for _, st := range []online.State{online.PowerSaving, online.Waking, online.Active} {
		fmt.Fprintf(&buf, "%s{state=%q} %d\n", full, st.String(), perState[st])
	}
	c.mu.Unlock()

	// Arena families (vmalloc_arena_*) carry their own prefix; the arena
	// has its own lock and its apply goroutine never takes c.mu, so this
	// runs outside the cluster lock.
	c.cfg.Arena.WriteMetrics(&buf)

	_, err := w.Write(buf.Bytes())
	return err
}
