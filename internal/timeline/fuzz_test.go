package timeline

import (
	"testing"
)

// FuzzSegmentSetInsert feeds arbitrary interval streams into SegmentSet
// and checks its invariants against a bitmap oracle.
func FuzzSegmentSetInsert(f *testing.F) {
	f.Add([]byte{1, 3, 5, 2, 10, 1})
	f.Add([]byte{0, 0, 1, 1, 2, 2})
	f.Add([]byte{200, 50, 10, 10, 10, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		var (
			s       SegmentSet
			covered [600]bool
		)
		for i := 0; i+1 < len(data); i += 2 {
			start := int(data[i]) + 1
			end := start + int(data[i+1])%32
			if end >= len(covered) {
				end = len(covered) - 1
			}
			if start > end {
				continue
			}
			s.Insert(Interval{Start: start, End: end})
			for x := start; x <= end; x++ {
				covered[x] = true
			}
		}
		// Invariant 1: segments sorted, disjoint, non-adjacent.
		segs := s.Segments()
		for k := 1; k < len(segs); k++ {
			if segs[k].Start <= segs[k-1].End+1 {
				t.Fatalf("segments not normalised: %v then %v", segs[k-1], segs[k])
			}
		}
		// Invariant 2: coverage matches the oracle.
		total := 0
		for x := 1; x < len(covered); x++ {
			if covered[x] {
				total++
			}
			if s.Covers(x) != covered[x] {
				t.Fatalf("Covers(%d) = %v, oracle %v", x, s.Covers(x), covered[x])
			}
		}
		if s.Total() != total {
			t.Fatalf("Total = %d, oracle %d", s.Total(), total)
		}
		// Invariant 3: gaps are exactly the uncovered stretches inside the
		// span.
		if first, last, ok := s.Bounds(); ok {
			gapLen := 0
			for _, g := range s.Gaps() {
				gapLen += g.Len()
				for x := g.Start; x <= g.End; x++ {
					if covered[x] {
						t.Fatalf("gap %v overlaps covered time %d", g, x)
					}
				}
			}
			if s.Total()+gapLen != last-first+1 {
				t.Fatalf("total %d + gaps %d != span %d", s.Total(), gapLen, last-first+1)
			}
		}
	})
}

// FuzzTreeProfile cross-checks the segment tree against the slice
// implementation on arbitrary operation streams.
func FuzzTreeProfile(f *testing.F) {
	f.Add([]byte{10, 1, 5, 3, 2, 8, 100})
	f.Add([]byte{255, 0, 255, 255, 1, 1, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		horizon := int(data[0])%200 + 1
		tree := NewTreeProfile(horizon)
		slice := NewSliceProfile(horizon)
		for i := 1; i+2 < len(data); i += 3 {
			a := int(data[i])%horizon + 1
			b := int(data[i+1])%horizon + 1
			if a > b {
				a, b = b, a
			}
			amt := float64(int(data[i+2]) - 128)
			tree.Add(a, b, amt)
			slice.Add(a, b, amt)
			if got, want := tree.Max(a, b), slice.Max(a, b); got != want {
				t.Fatalf("Max(%d,%d) = %g, want %g", a, b, got, want)
			}
		}
		for x := 1; x <= horizon; x++ {
			if got, want := tree.At(x), slice.At(x); got != want {
				t.Fatalf("At(%d) = %g, want %g", x, got, want)
			}
		}
	})
}
