package timeline

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Start: 3, End: 7}
	if iv.Len() != 5 {
		t.Errorf("Len = %d, want 5", iv.Len())
	}
	if !iv.Contains(3) || !iv.Contains(7) || iv.Contains(2) || iv.Contains(8) {
		t.Error("Contains boundaries wrong")
	}
	if !iv.Overlaps(Interval{7, 9}) || iv.Overlaps(Interval{8, 9}) {
		t.Error("Overlaps boundaries wrong")
	}
	if iv.String() != "[3,7]" {
		t.Errorf("String = %q", iv.String())
	}
}

func TestSegmentSetInsertMerging(t *testing.T) {
	tests := []struct {
		name   string
		insert []Interval
		want   []Interval
	}{
		{
			"disjoint stay disjoint",
			[]Interval{{1, 2}, {10, 12}, {5, 6}},
			[]Interval{{1, 2}, {5, 6}, {10, 12}},
		},
		{
			"overlap merges",
			[]Interval{{1, 5}, {4, 8}},
			[]Interval{{1, 8}},
		},
		{
			"adjacency merges",
			[]Interval{{1, 4}, {5, 8}},
			[]Interval{{1, 8}},
		},
		{
			"bridge merges three",
			[]Interval{{1, 2}, {8, 9}, {3, 7}},
			[]Interval{{1, 9}},
		},
		{
			"contained is absorbed",
			[]Interval{{1, 10}, {3, 4}},
			[]Interval{{1, 10}},
		},
		{
			"containing absorbs",
			[]Interval{{3, 4}, {1, 10}},
			[]Interval{{1, 10}},
		},
		{
			"gap of one unit does not merge",
			[]Interval{{1, 3}, {5, 7}},
			[]Interval{{1, 3}, {5, 7}},
		},
		{
			"single point",
			[]Interval{{4, 4}},
			[]Interval{{4, 4}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var s SegmentSet
			for _, iv := range tt.insert {
				s.Insert(iv)
			}
			if got := s.Segments(); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Segments = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSegmentSetGaps(t *testing.T) {
	tests := []struct {
		name   string
		insert []Interval
		want   []Interval
	}{
		{"empty", nil, nil},
		{"single", []Interval{{2, 5}}, nil},
		{"two", []Interval{{1, 3}, {7, 9}}, []Interval{{4, 6}}},
		{"three", []Interval{{1, 1}, {3, 3}, {10, 12}}, []Interval{{2, 2}, {4, 9}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var s SegmentSet
			for _, iv := range tt.insert {
				s.Insert(iv)
			}
			if got := s.Gaps(); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Gaps = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSegmentSetTotalAndCovers(t *testing.T) {
	var s SegmentSet
	s.Insert(Interval{1, 3})
	s.Insert(Interval{6, 6})
	if got := s.Total(); got != 4 {
		t.Errorf("Total = %d, want 4", got)
	}
	for _, tc := range []struct {
		t    int
		want bool
	}{{1, true}, {3, true}, {4, false}, {5, false}, {6, true}, {7, false}} {
		if got := s.Covers(tc.t); got != tc.want {
			t.Errorf("Covers(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestSegmentSetBounds(t *testing.T) {
	var s SegmentSet
	if _, _, ok := s.Bounds(); ok {
		t.Error("empty set has bounds")
	}
	s.Insert(Interval{5, 9})
	s.Insert(Interval{1, 2})
	first, last, ok := s.Bounds()
	if !ok || first != 1 || last != 9 {
		t.Errorf("Bounds = (%d, %d, %v), want (1, 9, true)", first, last, ok)
	}
}

func TestSegmentSetCloneIndependence(t *testing.T) {
	var s SegmentSet
	s.Insert(Interval{1, 3})
	c := s.Clone()
	c.Insert(Interval{10, 12})
	if s.Len() != 1 {
		t.Errorf("clone mutated original: %v", s.Segments())
	}
	if c.Len() != 2 {
		t.Errorf("clone missing insert: %v", c.Segments())
	}
}

func TestSegmentSetInsertPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Insert of inverted interval did not panic")
		}
	}()
	var s SegmentSet
	s.Insert(Interval{5, 4})
}

// naiveSet is the boolean-array oracle for SegmentSet.
type naiveSet struct{ covered [512]bool }

func (n *naiveSet) insert(iv Interval) {
	for t := iv.Start; t <= iv.End; t++ {
		n.covered[t] = true
	}
}

func (n *naiveSet) segments() []Interval {
	var out []Interval
	start := -1
	for t := 0; t < len(n.covered); t++ {
		switch {
		case n.covered[t] && start < 0:
			start = t
		case !n.covered[t] && start >= 0:
			out = append(out, Interval{start, t - 1})
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, Interval{start, len(n.covered) - 1})
	}
	return out
}

func TestSegmentSetMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		var (
			s SegmentSet
			n naiveSet
		)
		for op := 0; op < 40; op++ {
			a := 1 + rng.Intn(500)
			b := a + rng.Intn(20)
			if b > 511 {
				b = 511
			}
			iv := Interval{a, b}
			s.Insert(iv)
			n.insert(iv)

			want := n.segments()
			got := s.Segments()
			if len(got) == 0 {
				got = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d op %d: segments = %v, want %v", trial, op, got, want)
			}
		}
		// Cross-check Total and Covers on the final state.
		total := 0
		for tt := 1; tt <= 511; tt++ {
			if n.covered[tt] {
				total++
			}
			if s.Covers(tt) != n.covered[tt] {
				t.Fatalf("trial %d: Covers(%d) mismatch", trial, tt)
			}
		}
		if s.Total() != total {
			t.Fatalf("trial %d: Total = %d, want %d", trial, s.Total(), total)
		}
		// Gaps + segments must tile the busy span exactly.
		if first, last, ok := s.Bounds(); ok {
			span := last - first + 1
			gapLen := 0
			for _, g := range s.Gaps() {
				gapLen += g.Len()
			}
			if s.Total()+gapLen != span {
				t.Fatalf("trial %d: total %d + gaps %d != span %d", trial, s.Total(), gapLen, span)
			}
		}
	}
}
