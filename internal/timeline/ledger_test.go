package timeline

import (
	"math/rand"
	"testing"
)

func TestLedgerBasics(t *testing.T) {
	l := NewLedger()
	if l.Len() != 0 {
		t.Fatalf("Len = %d, want 0", l.Len())
	}
	if cpu, mem := l.MaxUsage(1, 100); cpu != 0 || mem != 0 {
		t.Fatalf("empty MaxUsage = (%g, %g)", cpu, mem)
	}
	l.Add(1, Reservation{Interval: Interval{Start: 5, End: 10}, CPU: 2, Mem: 4})
	l.Add(2, Reservation{Interval: Interval{Start: 8, End: 20}, CPU: 3, Mem: 1})
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	// Overlap on [8,10]: cpu 5, mem 5.
	if cpu, mem := l.MaxUsage(1, 30); cpu != 5 || mem != 5 {
		t.Errorf("MaxUsage(1,30) = (%g, %g), want (5, 5)", cpu, mem)
	}
	// Window touching only VM 2's tail.
	if cpu, mem := l.MaxUsage(11, 30); cpu != 3 || mem != 1 {
		t.Errorf("MaxUsage(11,30) = (%g, %g), want (3, 1)", cpu, mem)
	}
	// Window before everything.
	if cpu, mem := l.MaxUsage(1, 4); cpu != 0 || mem != 0 {
		t.Errorf("MaxUsage(1,4) = (%g, %g), want (0, 0)", cpu, mem)
	}
	if _, ok := l.Get(1); !ok {
		t.Error("Get(1) missing")
	}
	if r, ok := l.Remove(1); !ok || r.CPU != 2 {
		t.Errorf("Remove(1) = (%+v, %v)", r, ok)
	}
	if _, ok := l.Remove(1); ok {
		t.Error("double Remove reported ok")
	}
	if cpu, _ := l.MaxUsage(1, 30); cpu != 3 {
		t.Errorf("after remove MaxUsage cpu = %g, want 3", cpu)
	}
}

func TestLedgerTruncate(t *testing.T) {
	l := NewLedger()
	l.Add(7, Reservation{Interval: Interval{Start: 10, End: 30}, CPU: 2, Mem: 2})
	// Truncate to [10, 15].
	if _, ok := l.Truncate(7, 15); !ok {
		t.Fatal("Truncate missed entry")
	}
	if cpu, _ := l.MaxUsage(16, 30); cpu != 0 {
		t.Errorf("usage after truncation point = %g, want 0", cpu)
	}
	if cpu, _ := l.MaxUsage(10, 15); cpu != 2 {
		t.Errorf("usage before truncation point = %g, want 2", cpu)
	}
	// Truncating before the start removes the reservation.
	if _, ok := l.Truncate(7, 5); !ok {
		t.Fatal("second Truncate missed entry")
	}
	if l.Len() != 0 {
		t.Errorf("Len = %d after truncate-to-nothing, want 0", l.Len())
	}
	if _, ok := l.Truncate(7, 5); ok {
		t.Error("Truncate of absent id reported ok")
	}
	// Truncating at or past the end is a no-op.
	l.Add(8, Reservation{Interval: Interval{Start: 1, End: 4}, CPU: 1, Mem: 1})
	l.Truncate(8, 9)
	if r, _ := l.Get(8); r.Interval.End != 4 {
		t.Errorf("End = %d after no-op truncate, want 4", r.Interval.End)
	}
}

// TestLedgerVsProfileOracle cross-checks window maxima against the
// SliceProfile oracle under random insert/remove/truncate traffic.
func TestLedgerVsProfileOracle(t *testing.T) {
	const horizon = 200
	rng := rand.New(rand.NewSource(11))
	l := NewLedger()
	cpu := NewSliceProfile(horizon)
	mem := NewSliceProfile(horizon)
	live := map[int]Reservation{}
	nextID := 1
	for step := 0; step < 500; step++ {
		switch op := rng.Intn(4); {
		case op <= 1 || len(live) == 0: // insert
			start := 1 + rng.Intn(horizon-20)
			r := Reservation{
				Interval: Interval{Start: start, End: start + rng.Intn(20)},
				CPU:      float64(1 + rng.Intn(8)),
				Mem:      float64(1 + rng.Intn(8)),
			}
			l.Add(nextID, r)
			live[nextID] = r
			cpu.Add(r.Interval.Start, r.Interval.End, r.CPU)
			mem.Add(r.Interval.Start, r.Interval.End, r.Mem)
			nextID++
		case op == 2: // remove a random live entry
			for id, r := range live {
				l.Remove(id)
				cpu.Add(r.Interval.Start, r.Interval.End, -r.CPU)
				mem.Add(r.Interval.Start, r.Interval.End, -r.Mem)
				delete(live, id)
				break
			}
		default: // truncate a random live entry
			for id, r := range live {
				newEnd := r.Interval.Start + rng.Intn(r.Interval.Len()+2) - 1
				l.Truncate(id, newEnd)
				if newEnd < r.Interval.Start {
					cpu.Add(r.Interval.Start, r.Interval.End, -r.CPU)
					mem.Add(r.Interval.Start, r.Interval.End, -r.Mem)
					delete(live, id)
				} else if newEnd < r.Interval.End {
					cpu.Add(newEnd+1, r.Interval.End, -r.CPU)
					mem.Add(newEnd+1, r.Interval.End, -r.Mem)
					r.Interval.End = newEnd
					live[id] = r
				}
				break
			}
		}
		qs := 1 + rng.Intn(horizon-1)
		qe := qs + rng.Intn(horizon-qs)
		gotCPU, gotMem := l.MaxUsage(qs, qe)
		if wantCPU := cpu.Max(qs, qe); gotCPU != wantCPU {
			t.Fatalf("step %d: MaxUsage cpu over [%d,%d] = %g, oracle %g", step, qs, qe, gotCPU, wantCPU)
		}
		if wantMem := mem.Max(qs, qe); gotMem != wantMem {
			t.Fatalf("step %d: MaxUsage mem over [%d,%d] = %g, oracle %g", step, qs, qe, gotMem, wantMem)
		}
	}
}
