package timeline

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProfileBasics(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(int) Profile
	}{
		{"slice", func(h int) Profile { return NewSliceProfile(h) }},
		{"tree", func(h int) Profile { return NewTreeProfile(h) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.mk(10)
			if p.Horizon() != 10 {
				t.Fatalf("Horizon = %d, want 10", p.Horizon())
			}
			if got := p.Max(1, 10); got != 0 {
				t.Fatalf("empty Max = %g, want 0", got)
			}
			p.Add(2, 5, 3)
			p.Add(4, 8, 2)
			tests := []struct {
				start, end int
				want       float64
			}{
				{1, 1, 0},
				{2, 3, 3},
				{4, 5, 5},
				{6, 8, 2},
				{9, 10, 0},
				{1, 10, 5},
				{5, 6, 5},
				{6, 6, 2},
			}
			for _, tt := range tests {
				if got := p.Max(tt.start, tt.end); got != tt.want {
					t.Errorf("Max(%d,%d) = %g, want %g", tt.start, tt.end, got, tt.want)
				}
			}
			if got := p.At(4); got != 5 {
				t.Errorf("At(4) = %g, want 5", got)
			}
			// Removal via negative Add.
			p.Add(2, 5, -3)
			if got := p.Max(1, 10); got != 2 {
				t.Errorf("after removal Max = %g, want 2", got)
			}
		})
	}
}

func TestProfilePanicsOnBadInterval(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    Profile
	}{
		{"slice", NewSliceProfile(5)},
		{"tree", NewTreeProfile(5)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, iv := range [][2]int{{0, 3}, {1, 6}, {4, 2}} {
				func() {
					defer func() {
						if recover() == nil {
							t.Errorf("Add(%d,%d) did not panic", iv[0], iv[1])
						}
					}()
					tc.p.Add(iv[0], iv[1], 1)
				}()
			}
		})
	}
}

func TestNewProfilePanicsOnBadHorizon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTreeProfile(0) did not panic")
		}
	}()
	NewTreeProfile(0)
}

// TestTreeMatchesSliceRandomOps drives both implementations with the same
// random operation sequence and requires identical answers.
func TestTreeMatchesSliceRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		horizon := 1 + rng.Intn(200)
		slice := NewSliceProfile(horizon)
		tree := NewTreeProfile(horizon)
		for op := 0; op < 100; op++ {
			a, b := 1+rng.Intn(horizon), 1+rng.Intn(horizon)
			if a > b {
				a, b = b, a
			}
			if rng.Intn(2) == 0 {
				amt := float64(rng.Intn(21) - 10)
				slice.Add(a, b, amt)
				tree.Add(a, b, amt)
			} else {
				if got, want := tree.Max(a, b), slice.Max(a, b); got != want {
					t.Fatalf("trial %d op %d: tree.Max(%d,%d) = %g, slice says %g",
						trial, op, a, b, got, want)
				}
			}
		}
		for tt := 1; tt <= horizon; tt++ {
			if got, want := tree.At(tt), slice.At(tt); got != want {
				t.Fatalf("trial %d: At(%d) = %g, want %g", trial, tt, got, want)
			}
		}
	}
}

// TestTreeMaxQuick: the max over a window after a single Add is the added
// amount iff the windows intersect.
func TestTreeMaxQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := 1 + rng.Intn(100)
		p := NewTreeProfile(h)
		s := 1 + rng.Intn(h)
		e := s + rng.Intn(h-s+1)
		p.Add(s, e, 7)
		qs := 1 + rng.Intn(h)
		qe := qs + rng.Intn(h-qs+1)
		want := 0.0
		if qs <= e && s <= qe {
			want = 7
		}
		return p.Max(qs, qe) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTreeProfileAddMax(b *testing.B) {
	const horizon = 4096
	p := NewTreeProfile(horizon)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := 1 + rng.Intn(horizon)
		e := a + rng.Intn(horizon-a+1)
		p.Add(a, e, 1)
		_ = p.Max(a, e)
	}
}

func BenchmarkSliceProfileAddMax(b *testing.B) {
	const horizon = 4096
	p := NewSliceProfile(horizon)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := 1 + rng.Intn(horizon)
		e := a + rng.Intn(horizon-a+1)
		p.Add(a, e, 1)
		_ = p.Max(a, e)
	}
}
