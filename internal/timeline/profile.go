// Package timeline provides the discrete-time substrate used by the
// allocators: per-server resource usage profiles over the planning horizon,
// and sets of disjoint busy segments with idle-gap iteration.
//
// Time follows the module-wide convention: integer minutes, closed
// intervals, horizon [1, T].
package timeline

import "fmt"

// Profile tracks the usage of one resource (CPU or memory) over the horizon
// [1, T], supporting interval addition/removal and window-maximum queries.
//
// Two implementations are provided: SliceProfile (O(len) updates and
// queries; simple, used as the test oracle) and TreeProfile (lazy segment
// tree, O(log T) updates and queries; used by the allocators).
type Profile interface {
	// Horizon returns T.
	Horizon() int
	// Add increases usage by amount over the closed interval [start, end].
	Add(start, end int, amount float64)
	// Max returns the maximum usage over the closed interval [start, end].
	Max(start, end int) float64
	// At returns the usage at time t.
	At(t int) float64
}

func checkInterval(start, end, horizon int) {
	if start < 1 || end > horizon || start > end {
		panic(fmt.Sprintf("timeline: interval [%d,%d] outside horizon [1,%d]", start, end, horizon))
	}
}

// SliceProfile is the straightforward Profile: one float64 per time unit.
type SliceProfile struct {
	use []float64 // index t-1 holds usage at time t
}

var _ Profile = (*SliceProfile)(nil)

// NewSliceProfile returns an all-zero profile over [1, horizon].
func NewSliceProfile(horizon int) *SliceProfile {
	if horizon < 1 {
		panic(fmt.Sprintf("timeline: horizon %d < 1", horizon))
	}
	return &SliceProfile{use: make([]float64, horizon)}
}

// Horizon returns T.
func (p *SliceProfile) Horizon() int { return len(p.use) }

// Add increases usage by amount over [start, end].
func (p *SliceProfile) Add(start, end int, amount float64) {
	checkInterval(start, end, len(p.use))
	for t := start; t <= end; t++ {
		p.use[t-1] += amount
	}
}

// Max returns the maximum usage over [start, end].
func (p *SliceProfile) Max(start, end int) float64 {
	checkInterval(start, end, len(p.use))
	maxUse := p.use[start-1]
	for t := start + 1; t <= end; t++ {
		if p.use[t-1] > maxUse {
			maxUse = p.use[t-1]
		}
	}
	return maxUse
}

// At returns the usage at time t.
func (p *SliceProfile) At(t int) float64 {
	checkInterval(t, t, len(p.use))
	return p.use[t-1]
}

// TreeProfile is a lazy-propagation segment tree over [1, T] supporting
// range-add updates and range-max queries in O(log T).
type TreeProfile struct {
	horizon int
	// maxv[i] is the max of node i's range assuming all pending adds above
	// it are applied; lazy[i] is the pending add for node i's whole range,
	// not yet pushed to children (but already reflected in maxv[i]).
	maxv []float64
	lazy []float64
}

var _ Profile = (*TreeProfile)(nil)

// NewTreeProfile returns an all-zero profile over [1, horizon].
func NewTreeProfile(horizon int) *TreeProfile {
	if horizon < 1 {
		panic(fmt.Sprintf("timeline: horizon %d < 1", horizon))
	}
	return &TreeProfile{
		horizon: horizon,
		maxv:    make([]float64, 4*horizon),
		lazy:    make([]float64, 4*horizon),
	}
}

// Horizon returns T.
func (p *TreeProfile) Horizon() int { return p.horizon }

// Add increases usage by amount over [start, end].
func (p *TreeProfile) Add(start, end int, amount float64) {
	checkInterval(start, end, p.horizon)
	p.add(1, 1, p.horizon, start, end, amount)
}

func (p *TreeProfile) add(node, lo, hi, start, end int, amount float64) {
	if start <= lo && hi <= end {
		p.maxv[node] += amount
		p.lazy[node] += amount
		return
	}
	mid := (lo + hi) / 2
	if start <= mid {
		p.add(2*node, lo, mid, start, end, amount)
	}
	if end > mid {
		p.add(2*node+1, mid+1, hi, start, end, amount)
	}
	p.maxv[node] = p.lazy[node] + max64(p.maxv[2*node], p.maxv[2*node+1])
}

// Max returns the maximum usage over [start, end].
func (p *TreeProfile) Max(start, end int) float64 {
	checkInterval(start, end, p.horizon)
	return p.query(1, 1, p.horizon, start, end)
}

func (p *TreeProfile) query(node, lo, hi, start, end int) float64 {
	if start <= lo && hi <= end {
		return p.maxv[node]
	}
	mid := (lo + hi) / 2
	var best float64
	switch {
	case end <= mid:
		best = p.query(2*node, lo, mid, start, end)
	case start > mid:
		best = p.query(2*node+1, mid+1, hi, start, end)
	default:
		best = max64(
			p.query(2*node, lo, mid, start, end),
			p.query(2*node+1, mid+1, hi, start, end),
		)
	}
	return best + p.lazy[node]
}

// At returns the usage at time t.
func (p *TreeProfile) At(t int) float64 { return p.Max(t, t) }

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
