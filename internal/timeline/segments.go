package timeline

import (
	"fmt"
	"sort"
)

// Interval is a closed time interval [Start, End].
type Interval struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Len returns the number of time units covered (End−Start+1).
func (iv Interval) Len() int { return iv.End - iv.Start + 1 }

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t int) bool { return iv.Start <= t && t <= iv.End }

// Overlaps reports whether the two closed intervals share a time unit.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start <= o.End && o.Start <= iv.End
}

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Start, iv.End) }

// SegmentSet maintains a set of disjoint, non-adjacent closed intervals in
// increasing order — a server's busy segments. Inserting an interval merges
// it with any overlapping or adjacent segments ([3,5] and [6,8] are
// adjacent in discrete time and merge to [3,8]).
//
// The zero value is an empty set ready for use.
type SegmentSet struct {
	segs []Interval
}

// Insert adds the interval to the set, merging as needed.
func (s *SegmentSet) Insert(iv Interval) {
	if iv.Start > iv.End {
		panic(fmt.Sprintf("timeline: inverted interval %v", iv))
	}
	// Position of the first segment that could touch iv: segments are
	// mergeable with iv when seg.End >= iv.Start-1.
	lo := sort.Search(len(s.segs), func(i int) bool {
		return s.segs[i].End >= iv.Start-1
	})
	// Position one past the last segment that could touch iv.
	hi := lo
	for hi < len(s.segs) && s.segs[hi].Start <= iv.End+1 {
		hi++
	}
	if lo == hi {
		// No merging: insert at lo.
		s.segs = append(s.segs, Interval{})
		copy(s.segs[lo+1:], s.segs[lo:])
		s.segs[lo] = iv
		return
	}
	merged := iv
	if s.segs[lo].Start < merged.Start {
		merged.Start = s.segs[lo].Start
	}
	if s.segs[hi-1].End > merged.End {
		merged.End = s.segs[hi-1].End
	}
	s.segs[lo] = merged
	s.segs = append(s.segs[:lo+1], s.segs[hi:]...)
}

// Len returns the number of disjoint segments.
func (s *SegmentSet) Len() int { return len(s.segs) }

// Total returns the total number of covered time units.
func (s *SegmentSet) Total() int {
	var total int
	for _, seg := range s.segs {
		total += seg.Len()
	}
	return total
}

// Covers reports whether time t is covered by some segment.
func (s *SegmentSet) Covers(t int) bool {
	i := sort.Search(len(s.segs), func(i int) bool { return s.segs[i].End >= t })
	return i < len(s.segs) && s.segs[i].Contains(t)
}

// Segments returns the segments in increasing order. The returned slice is
// a copy.
func (s *SegmentSet) Segments() []Interval {
	out := make([]Interval, len(s.segs))
	copy(out, s.segs)
	return out
}

// Gaps returns the interior idle gaps: the maximal uncovered intervals
// strictly between the first and last segment. Time before the first
// segment and after the last is not a gap (the paper's servers sleep for
// free outside their busy span).
func (s *SegmentSet) Gaps() []Interval {
	if len(s.segs) < 2 {
		return nil
	}
	gaps := make([]Interval, 0, len(s.segs)-1)
	for i := 1; i < len(s.segs); i++ {
		gaps = append(gaps, Interval{Start: s.segs[i-1].End + 1, End: s.segs[i].Start - 1})
	}
	return gaps
}

// Clone returns an independent copy of the set.
func (s *SegmentSet) Clone() *SegmentSet {
	c := &SegmentSet{segs: make([]Interval, len(s.segs))}
	copy(c.segs, s.segs)
	return c
}

// Bounds returns the first covered and last covered time unit, or ok=false
// for an empty set.
func (s *SegmentSet) Bounds() (first, last int, ok bool) {
	if len(s.segs) == 0 {
		return 0, 0, false
	}
	return s.segs[0].Start, s.segs[len(s.segs)-1].End, true
}
