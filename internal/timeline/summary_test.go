package timeline

import (
	"math/rand"
	"sort"
	"testing"
)

// naiveWindowMax computes MaxUsage by brute-force minute scan over the
// reservations — the reference the compiled step function must match.
func naiveWindowMax(entries map[int]Reservation, start, end int) (cpu, mem float64) {
	for t := start; t <= end; t++ {
		var c, m float64
		for _, r := range entries {
			if r.Interval.Start <= t && t <= r.Interval.End {
				c += r.CPU
				m += r.Mem
			}
		}
		if c > cpu {
			cpu = c
		}
		if m > mem {
			mem = m
		}
	}
	return cpu, mem
}

func TestLedgerMaxUsageMatchesNaiveRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := NewLedger()
		mirror := map[int]Reservation{}
		nextID := 1
		for op := 0; op < 300; op++ {
			switch r := rng.Float64(); {
			case r < 0.55 || len(mirror) == 0:
				start := 1 + rng.Intn(50)
				res := Reservation{
					Interval: Interval{Start: start, End: start + rng.Intn(30)},
					CPU:      float64(1+rng.Intn(8)) / 4,
					Mem:      float64(1+rng.Intn(8)) / 2,
				}
				l.Add(nextID, res)
				mirror[nextID] = res
				nextID++
			case r < 0.8:
				id := randomKey(rng, mirror)
				l.Remove(id)
				delete(mirror, id)
			default:
				id := randomKey(rng, mirror)
				newEnd := rng.Intn(90)
				l.Truncate(id, newEnd)
				if res, ok := mirror[id]; ok {
					if newEnd < res.Interval.Start {
						delete(mirror, id)
					} else if newEnd < res.Interval.End {
						res.Interval.End = newEnd
						mirror[id] = res
					}
				}
			}
			// Probe a handful of windows, including ones that poke out
			// past the busy span on either side.
			for q := 0; q < 5; q++ {
				qs := 1 + rng.Intn(100)
				qe := qs + rng.Intn(40)
				wantCPU, wantMem := naiveWindowMax(mirror, qs, qe)
				gotCPU, gotMem := l.MaxUsage(qs, qe)
				if gotCPU != wantCPU || gotMem != wantMem {
					t.Fatalf("seed %d op %d: MaxUsage(%d,%d) = (%v,%v), naive (%v,%v)",
						seed, op, qs, qe, gotCPU, gotMem, wantCPU, wantMem)
				}
			}
		}
	}
}

func TestLedgerSummaryMatchesNaive(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := NewLedger()
		mirror := map[int]Reservation{}
		for id := 1; id <= 20; id++ {
			start := 1 + rng.Intn(40)
			res := Reservation{
				Interval: Interval{Start: start, End: start + rng.Intn(25)},
				CPU:      float64(1+rng.Intn(8)) / 4,
				Mem:      float64(1+rng.Intn(8)) / 2,
			}
			l.Add(id, res)
			mirror[id] = res
			if id%3 == 0 {
				victim := randomKey(rng, mirror)
				l.Remove(victim)
				delete(mirror, victim)
			}

			sum := l.Summary()
			if len(mirror) == 0 {
				if sum.End >= sum.Start {
					t.Fatalf("seed %d: empty ledger summary %+v", seed, sum)
				}
				continue
			}
			lo, hi := 1<<30, 0
			for _, r := range mirror {
				if r.Interval.Start < lo {
					lo = r.Interval.Start
				}
				if r.Interval.End > hi {
					hi = r.Interval.End
				}
			}
			if sum.Start != lo || sum.End != hi {
				t.Fatalf("seed %d: span [%d,%d], want [%d,%d]", seed, sum.Start, sum.End, lo, hi)
			}
			peakCPU, peakMem := naiveWindowMax(mirror, lo, hi)
			if sum.PeakCPU != peakCPU || sum.PeakMem != peakMem {
				t.Fatalf("seed %d: peak (%v,%v), naive (%v,%v)", seed, sum.PeakCPU, sum.PeakMem, peakCPU, peakMem)
			}
			// Mins: brute-force minute scan of the busy span.
			minCPU, minMem := 1e18, 1e18
			for tt := lo; tt <= hi; tt++ {
				var c, m float64
				for _, r := range mirror {
					if r.Interval.Start <= tt && tt <= r.Interval.End {
						c += r.CPU
						m += r.Mem
					}
				}
				if c < minCPU {
					minCPU = c
				}
				if m < minMem {
					minMem = m
				}
			}
			if sum.MinCPU != minCPU || sum.MinMem != minMem {
				t.Fatalf("seed %d: min (%v,%v), naive (%v,%v)", seed, sum.MinCPU, sum.MinMem, minCPU, minMem)
			}
			// The summary bounds must bracket every window answer.
			for q := 0; q < 10; q++ {
				qs := lo + rng.Intn(hi-lo+1)
				qe := qs + rng.Intn(hi-qs+1)
				cpu, mem := l.MaxUsage(qs, qe)
				if cpu > sum.PeakCPU || mem > sum.PeakMem {
					t.Fatalf("seed %d: window max (%v,%v) above peak (%v,%v)", seed, cpu, mem, sum.PeakCPU, sum.PeakMem)
				}
				if cpu < sum.MinCPU || mem < sum.MinMem {
					t.Fatalf("seed %d: window [%d,%d] ⊆ span but max (%v,%v) below span min (%v,%v)",
						seed, qs, qe, cpu, mem, sum.MinCPU, sum.MinMem)
				}
			}
		}
	}
}

// TestLedgerMaxUsageAllocFree pins the hot-path contract: a compiled
// ledger answers window queries without allocating.
func TestLedgerMaxUsageAllocFree(t *testing.T) {
	l := NewLedger()
	rng := rand.New(rand.NewSource(7))
	for id := 1; id <= 32; id++ {
		start := 1 + rng.Intn(100)
		l.Add(id, Reservation{
			Interval: Interval{Start: start, End: start + rng.Intn(50)},
			CPU:      rng.Float64() * 4,
			Mem:      rng.Float64() * 8,
		})
	}
	allocs := testing.AllocsPerRun(100, func() {
		l.MaxUsage(40, 90)
	})
	if allocs != 0 {
		t.Fatalf("MaxUsage allocated %.1f objects per call, want 0", allocs)
	}
}

func randomKey(rng *rand.Rand, m map[int]Reservation) int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return 0
	}
	sort.Ints(keys) // deterministic pick regardless of map iteration order
	return keys[rng.Intn(len(keys))]
}
