package timeline

import "sort"

// Reservation is one live resource claim in a Ledger: a CPU/memory amount
// held over a closed time interval.
type Reservation struct {
	Interval Interval
	CPU      float64
	Mem      float64
}

// Ledger tracks the live reservations of one server, keyed by VM ID, and
// answers window-maximum queries by sweeping the reservations overlapping
// the window.
//
// Unlike the horizon-bound Profile implementations, a Ledger has no
// planning horizon: intervals may start and end at any positive minute,
// which is what a long-running allocation service needs. Queries cost
// O(k log k) in the number of overlapping reservations — small in live
// fleets, where k is bounded by how many VMs fit on one server at once —
// and reservations can be removed or truncated when a VM departs early.
//
// Concurrency: MaxUsage and Len are pure reads and safe for concurrent
// use; Add, Remove and Truncate must not run concurrently with them. This
// is the same alternating scan/commit contract the parallel candidate-scan
// engine relies on elsewhere in the module.
//
// The zero value is not ready for use; call NewLedger.
type Ledger struct {
	entries map[int]Reservation
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{entries: make(map[int]Reservation)}
}

// Len returns the number of live reservations.
func (l *Ledger) Len() int { return len(l.entries) }

// Add records a reservation under the given ID, replacing any existing
// reservation with that ID.
func (l *Ledger) Add(id int, r Reservation) {
	l.entries[id] = r
}

// Get returns the reservation with the given ID.
func (l *Ledger) Get(id int) (Reservation, bool) {
	r, ok := l.entries[id]
	return r, ok
}

// Remove deletes the reservation with the given ID, returning it and
// whether it existed.
func (l *Ledger) Remove(id int) (Reservation, bool) {
	r, ok := l.entries[id]
	if ok {
		delete(l.entries, id)
	}
	return r, ok
}

// Truncate shortens the reservation with the given ID to end at newEnd.
// If newEnd precedes the reservation's start the reservation is removed
// entirely. It returns the original reservation and whether it existed.
func (l *Ledger) Truncate(id, newEnd int) (Reservation, bool) {
	r, ok := l.entries[id]
	if !ok {
		return Reservation{}, false
	}
	if newEnd < r.Interval.Start {
		delete(l.entries, id)
		return r, true
	}
	if newEnd < r.Interval.End {
		shrunk := r
		shrunk.Interval.End = newEnd
		l.entries[id] = shrunk
	}
	return r, true
}

// MaxUsage returns the maximum total CPU and memory reserved at any single
// minute of the closed window [start, end]. The two maxima are computed
// independently (they may occur at different minutes), matching the
// feasibility semantics of the per-resource Profile queries.
func (l *Ledger) MaxUsage(start, end int) (cpu, mem float64) {
	// Aggregate boundary deltas per minute so the sweep is deterministic
	// regardless of map iteration order.
	type delta struct{ cpu, mem float64 }
	deltas := make(map[int]delta)
	for _, r := range l.entries {
		if r.Interval.End < start || r.Interval.Start > end {
			continue
		}
		lo, hi := r.Interval.Start, r.Interval.End
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		d := deltas[lo]
		d.cpu += r.CPU
		d.mem += r.Mem
		deltas[lo] = d
		d = deltas[hi+1]
		d.cpu -= r.CPU
		d.mem -= r.Mem
		deltas[hi+1] = d
	}
	if len(deltas) == 0 {
		return 0, 0
	}
	times := make([]int, 0, len(deltas))
	for t := range deltas {
		times = append(times, t)
	}
	sort.Ints(times)
	var curCPU, curMem float64
	for _, t := range times {
		d := deltas[t]
		curCPU += d.cpu
		curMem += d.mem
		if curCPU > cpu {
			cpu = curCPU
		}
		if curMem > mem {
			mem = curMem
		}
	}
	return cpu, mem
}
