package timeline

import "sort"

// Reservation is one live resource claim in a Ledger: a CPU/memory amount
// held over a closed time interval.
type Reservation struct {
	Interval Interval
	CPU      float64
	Mem      float64
}

// Summary is a ledger's O(1) interval summary — the per-server building
// block of the fleet's feasibility index. All fields describe the
// compiled step function of total usage over time.
type Summary struct {
	// PeakCPU and PeakMem are the maximum total usage at any minute
	// (computed independently; they may peak at different minutes).
	PeakCPU float64
	// MinCPU and MinMem are the minimum total usage at any minute of the
	// busy span [Start, End]. Gaps between reservations count as zero
	// usage, so a ledger with a hole in its schedule reports a min of 0.
	PeakMem float64
	MinCPU  float64
	MinMem  float64
	// Start and End bound the busy span: the first and last minute any
	// reservation covers. An empty ledger has End < Start.
	Start int
	End   int
}

// mark is one compiled step-function boundary: the usage delta taking
// effect at minute t. Marks sort by (t, end, id) — a fixed total order —
// so the float accumulation below is byte-reproducible regardless of map
// iteration order.
type mark struct {
	t   int
	id  int
	end bool
	cpu float64
	mem float64
}

// Ledger tracks the live reservations of one server, keyed by VM ID, and
// answers window-maximum queries from a compiled step function of total
// usage that is rebuilt eagerly on every mutation.
//
// Unlike the horizon-bound Profile implementations, a Ledger has no
// planning horizon: intervals may start and end at any positive minute,
// which is what a long-running allocation service needs. Mutations cost
// O(k log k) in the number of live reservations (they recompile the step
// function); MaxUsage is a zero-allocation binary search plus a walk of
// the overlapped segments, and Summary is O(1) — the fleet's feasibility
// index reads it to skip provably-infeasible servers without touching
// the segments at all.
//
// Concurrency: MaxUsage, Summary, Get and Len are pure reads and safe
// for concurrent use; Add, Remove and Truncate must not run concurrently
// with them. This is the same alternating scan/commit contract the
// parallel candidate-scan engine relies on elsewhere in the module.
//
// The zero value is not ready for use; call NewLedger.
type Ledger struct {
	entries map[int]Reservation

	// Compiled step function. Segment s covers minutes
	// [times[s], times[s+1]-1] with total usage (cpu[s], mem[s]);
	// len(times) == len(cpu)+1 when non-empty. Usage outside
	// [times[0], times[m]-1] is zero.
	times []int
	cpu   []float64
	mem   []float64
	sum   Summary

	marks []mark // rebuild scratch, reused across mutations
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	l := &Ledger{entries: make(map[int]Reservation)}
	l.rebuild()
	return l
}

// Len returns the number of live reservations.
func (l *Ledger) Len() int { return len(l.entries) }

// Add records a reservation under the given ID, replacing any existing
// reservation with that ID.
func (l *Ledger) Add(id int, r Reservation) {
	l.entries[id] = r
	l.rebuild()
}

// Get returns the reservation with the given ID.
func (l *Ledger) Get(id int) (Reservation, bool) {
	r, ok := l.entries[id]
	return r, ok
}

// Remove deletes the reservation with the given ID, returning it and
// whether it existed.
func (l *Ledger) Remove(id int) (Reservation, bool) {
	r, ok := l.entries[id]
	if ok {
		delete(l.entries, id)
		l.rebuild()
	}
	return r, ok
}

// Truncate shortens the reservation with the given ID to end at newEnd.
// If newEnd precedes the reservation's start the reservation is removed
// entirely. It returns the original reservation and whether it existed.
func (l *Ledger) Truncate(id, newEnd int) (Reservation, bool) {
	r, ok := l.entries[id]
	if !ok {
		return Reservation{}, false
	}
	if newEnd < r.Interval.Start {
		delete(l.entries, id)
		l.rebuild()
		return r, true
	}
	if newEnd < r.Interval.End {
		shrunk := r
		shrunk.Interval.End = newEnd
		l.entries[id] = shrunk
		l.rebuild()
	}
	return r, true
}

// Summary returns the ledger's current interval summary. O(1).
func (l *Ledger) Summary() Summary { return l.sum }

// MaxUsage returns the maximum total CPU and memory reserved at any single
// minute of the closed window [start, end]. The two maxima are computed
// independently (they may occur at different minutes), matching the
// feasibility semantics of the per-resource Profile queries. It allocates
// nothing: the answer is read off the compiled step function.
func (l *Ledger) MaxUsage(start, end int) (cpu, mem float64) {
	m := len(l.cpu)
	if m == 0 || end < l.times[0] || start >= l.times[m] {
		return 0, 0
	}
	if start <= l.times[0] && end >= l.times[m]-1 {
		// The window covers the whole busy span: the answer is the peak.
		return l.sum.PeakCPU, l.sum.PeakMem
	}
	// First segment overlapping the window: the last s with times[s] ≤
	// start, clamped to 0 when the window starts before the span.
	s := sort.SearchInts(l.times, start+1) - 1
	if s < 0 {
		s = 0
	}
	for ; s < m && l.times[s] <= end; s++ {
		if l.cpu[s] > cpu {
			cpu = l.cpu[s]
		}
		if l.mem[s] > mem {
			mem = l.mem[s]
		}
	}
	return cpu, mem
}

// rebuild recompiles the step function and summary from the live
// reservations. Marks are sorted by the fixed (t, end, id) order, so the
// running float sums — and therefore every MaxUsage answer and Summary
// bound derived from them — are byte-reproducible for a given set of
// reservations, independent of insertion or map iteration order.
func (l *Ledger) rebuild() {
	l.times = l.times[:0]
	l.cpu = l.cpu[:0]
	l.mem = l.mem[:0]
	l.sum = Summary{End: -1}
	if len(l.entries) == 0 {
		return
	}
	marks := l.marks[:0]
	for id, r := range l.entries {
		marks = append(marks,
			mark{t: r.Interval.Start, id: id, cpu: r.CPU, mem: r.Mem},
			mark{t: r.Interval.End + 1, id: id, end: true, cpu: -r.CPU, mem: -r.Mem},
		)
	}
	sort.Slice(marks, func(a, b int) bool {
		if marks[a].t != marks[b].t {
			return marks[a].t < marks[b].t
		}
		if marks[a].end != marks[b].end {
			return !marks[a].end // starts before ends at the same minute
		}
		return marks[a].id < marks[b].id
	})
	l.marks = marks
	var curCPU, curMem float64
	for i := 0; i < len(marks); {
		t := marks[i].t
		for i < len(marks) && marks[i].t == t {
			curCPU += marks[i].cpu
			curMem += marks[i].mem
			i++
		}
		l.times = append(l.times, t)
		if i < len(marks) {
			l.cpu = append(l.cpu, curCPU)
			l.mem = append(l.mem, curMem)
		}
	}
	first := true
	for s := range l.cpu {
		if first || l.cpu[s] > l.sum.PeakCPU {
			l.sum.PeakCPU = l.cpu[s]
		}
		if first || l.mem[s] > l.sum.PeakMem {
			l.sum.PeakMem = l.mem[s]
		}
		if first || l.cpu[s] < l.sum.MinCPU {
			l.sum.MinCPU = l.cpu[s]
		}
		if first || l.mem[s] < l.sum.MinMem {
			l.sum.MinMem = l.mem[s]
		}
		first = false
	}
	l.sum.Start = l.times[0]
	l.sum.End = l.times[len(l.times)-1] - 1
}
