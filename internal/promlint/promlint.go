// Package promlint validates Prometheus text-exposition payloads in
// tests. It is shared by the vmserve handler tests and the vmgate
// merge tests, so the single-shard exposition and the gate's merged
// multi-shard exposition are held to the same rules: well-formed sample
// lines, HELP/TYPE declared once and before each family's samples, no
// duplicate series, and cumulative histogram buckets whose +Inf bucket
// equals _count.
package promlint

import (
	"fmt"
	"strings"
	"testing"
)

// Lint validates one Prometheus text-exposition payload, reporting
// every violation as a test error.
func Lint(t *testing.T, payload string) {
	t.Helper()
	seen := map[string]bool{}          // full series (name + labels)
	declared := map[string]bool{}      // family name with HELP or TYPE seen
	sampled := map[string]bool{}       // family name with samples seen
	lastBucket := map[string]float64{} // bucket series prefix → last cumulative value
	counts := map[string]float64{}     // histogram _count by labelled series base
	infs := map[string]float64{}       // histogram +Inf bucket by series base

	for _, line := range strings.Split(payload, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Errorf("malformed comment line %q", line)
				continue
			}
			name := fields[2]
			if sampled[name] {
				t.Errorf("%s: %s declared after its samples", fields[1], name)
			}
			declared[name] = true
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Errorf("sample line %q has no value", line)
			continue
		}
		series, valStr := line[:sp], line[sp+1:]
		var val float64
		if _, err := fmt.Sscanf(valStr, "%g", &val); err != nil {
			t.Errorf("sample %q: bad value %q", series, valStr)
			continue
		}
		if seen[series] {
			t.Errorf("duplicate series %q", series)
		}
		seen[series] = true

		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		// _bucket/_sum/_count samples belong to the histogram family.
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suf); base != name && declared[base] {
				family = base
			}
		}
		if !declared[family] {
			t.Errorf("series %q sampled before any HELP/TYPE for %q", series, family)
		}
		sampled[family] = true

		// Histogram invariants: cumulative buckets, +Inf == _count.
		if strings.HasSuffix(name, "_bucket") {
			le := ""
			if i := strings.Index(series, `le="`); i >= 0 {
				rest := series[i+4:]
				if j := strings.IndexByte(rest, '"'); j >= 0 {
					le = rest[:j]
				}
			}
			if le == "" {
				t.Errorf("bucket %q has no le label", series)
				continue
			}
			// The series without its le label identifies the histogram.
			base := strings.Replace(series, `le="`+le+`"`, "", 1)
			base = strings.NewReplacer("{,", "{", ",}", "}", "{}", "").Replace(base)
			if prev, ok := lastBucket[base]; ok && val < prev {
				t.Errorf("bucket %q: %g < previous bucket %g (not cumulative)", series, val, prev)
			}
			lastBucket[base] = val
			if le == "+Inf" {
				infs[base] = val
			}
		}
		if strings.HasSuffix(name, "_count") && declared[strings.TrimSuffix(name, "_count")] {
			base := strings.Replace(series, "_count", "_bucket", 1)
			counts[base] = val
		}
	}
	for base, inf := range infs {
		if count, ok := counts[base]; ok && count != inf {
			t.Errorf("histogram %q: +Inf bucket %g != _count %g", base, inf, count)
		}
	}
	if len(infs) == 0 {
		t.Error("no histogram buckets found in the payload")
	}
}
