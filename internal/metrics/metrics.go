// Package metrics computes the evaluation metrics of paper §IV: average
// CPU and memory utilisation of servers (averaged over nonzero samples,
// i.e. while a server is actually hosting VMs) and the system load.
package metrics

import (
	"fmt"

	"vmalloc/internal/energy"
	"vmalloc/internal/model"
	"vmalloc/internal/timeline"
)

// Utilization holds the paper's two utilisation metrics as fractions in
// [0, 1].
type Utilization struct {
	CPU float64 `json:"cpu"`
	Mem float64 `json:"mem"`
}

// Imbalance returns |CPU − Mem|, the unevenness between the two resource
// utilisations that Fig. 3 discusses.
func (u Utilization) Imbalance() float64 {
	d := u.CPU - u.Mem
	if d < 0 {
		d = -d
	}
	return d
}

// AverageUtilization computes the average CPU and memory utilisation of a
// placement exactly as §IV-C defines it: the utilisation of a server at
// time t is the fraction of its capacity used by VMs running at t, and the
// average is taken over the nonzero samples only — it measures usage while
// the server is busy.
//
// CPU and memory averages are taken over the same sample set (times where
// the server hosts at least one VM), so a busy server contributes its
// memory utilisation even when only its CPU-heavy VMs dominate, matching
// the paper's paired plots.
func AverageUtilization(inst model.Instance, placement map[int]int) (Utilization, error) {
	serverIdx := make(map[int]int, len(inst.Servers))
	for i, s := range inst.Servers {
		serverIdx[s.ID] = i
	}
	// Per-server per-time usage accumulated with difference arrays.
	type usage struct{ cpu, mem []float64 }
	use := make([]usage, len(inst.Servers))
	touched := make([]bool, len(inst.Servers))
	for _, v := range inst.VMs {
		sid, ok := placement[v.ID]
		if !ok {
			return Utilization{}, fmt.Errorf("metrics: vm %d is unplaced", v.ID)
		}
		i, ok := serverIdx[sid]
		if !ok {
			return Utilization{}, fmt.Errorf("metrics: unknown server %d", sid)
		}
		if !touched[i] {
			use[i] = usage{
				cpu: make([]float64, inst.Horizon+2),
				mem: make([]float64, inst.Horizon+2),
			}
			touched[i] = true
		}
		use[i].cpu[v.Start] += v.Demand.CPU
		use[i].cpu[v.End+1] -= v.Demand.CPU
		use[i].mem[v.Start] += v.Demand.Mem
		use[i].mem[v.End+1] -= v.Demand.Mem
	}
	var (
		sumCPU, sumMem float64
		samples        int
	)
	for i, s := range inst.Servers {
		if !touched[i] {
			continue
		}
		var curCPU, curMem float64
		for t := 1; t <= inst.Horizon; t++ {
			curCPU += use[i].cpu[t]
			curMem += use[i].mem[t]
			if curCPU > 0 || curMem > 0 {
				sumCPU += curCPU / s.Capacity.CPU
				sumMem += curMem / s.Capacity.Mem
				samples++
			}
		}
	}
	if samples == 0 {
		return Utilization{}, nil
	}
	return Utilization{CPU: sumCPU / float64(samples), Mem: sumMem / float64(samples)}, nil
}

// PeakConcurrency returns the maximum number of VMs alive at any time unit
// — a cheap feasibility signal for workload calibration.
func PeakConcurrency(inst model.Instance) int {
	diff := make([]int, inst.Horizon+2)
	for _, v := range inst.VMs {
		diff[v.Start]++
		diff[v.End+1]--
	}
	peak, cur := 0, 0
	for t := 1; t <= inst.Horizon; t++ {
		cur += diff[t]
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// ActiveServersSeries returns, for each time unit 1..Horizon, the number
// of servers that are in the active state under the placement's optimal
// activity schedule (busy segments plus bridged idle gaps). It is the
// fleet's power-state timeline — the quantity dynamic right-sizing work
// plots against diurnal load.
func ActiveServersSeries(inst model.Instance, placement map[int]int) ([]int, error) {
	perServer := make(map[int][]model.VM, len(inst.Servers))
	for _, v := range inst.VMs {
		sid, ok := placement[v.ID]
		if !ok {
			return nil, fmt.Errorf("metrics: vm %d is unplaced", v.ID)
		}
		perServer[sid] = append(perServer[sid], v)
	}
	diff := make([]int, inst.Horizon+2)
	for sid, vms := range perServer {
		srv, ok := inst.ServerByID(sid)
		if !ok {
			return nil, fmt.Errorf("metrics: unknown server %d", sid)
		}
		var busy timeline.SegmentSet
		for _, v := range vms {
			busy.Insert(timeline.Interval{Start: v.Start, End: v.End})
		}
		for _, iv := range energy.ActiveIntervals(srv, &busy) {
			diff[iv.Start]++
			if iv.End+1 < len(diff) {
				diff[iv.End+1]--
			}
		}
	}
	series := make([]int, inst.Horizon)
	cur := 0
	for t := 1; t <= inst.Horizon; t++ {
		cur += diff[t]
		series[t-1] = cur
	}
	return series, nil
}
