package metrics

import (
	"math"
	"testing"

	"vmalloc/internal/model"
)

func inst2() model.Instance {
	// Server 1: 10 CPU / 10 mem. Server 2: 20 CPU / 20 mem.
	return model.NewInstance(
		[]model.VM{
			{ID: 1, Demand: model.Resources{CPU: 5, Mem: 2}, Start: 1, End: 4},
			{ID: 2, Demand: model.Resources{CPU: 10, Mem: 5}, Start: 3, End: 6},
		},
		[]model.Server{
			{ID: 1, Capacity: model.Resources{CPU: 10, Mem: 10}, PIdle: 100, PPeak: 200},
			{ID: 2, Capacity: model.Resources{CPU: 20, Mem: 20}, PIdle: 150, PPeak: 300},
		},
	)
}

func TestAverageUtilizationHandComputed(t *testing.T) {
	inst := inst2()
	// VM1 on server 1, VM2 on server 2.
	u, err := AverageUtilization(inst, map[int]int{1: 1, 2: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Server 1 busy t=1..4 at 5/10 CPU, 2/10 mem (4 samples).
	// Server 2 busy t=3..6 at 10/20 CPU, 5/20 mem (4 samples).
	wantCPU := (4*0.5 + 4*0.5) / 8
	wantMem := (4*0.2 + 4*0.25) / 8
	if math.Abs(u.CPU-wantCPU) > 1e-12 {
		t.Errorf("CPU = %g, want %g", u.CPU, wantCPU)
	}
	if math.Abs(u.Mem-wantMem) > 1e-12 {
		t.Errorf("Mem = %g, want %g", u.Mem, wantMem)
	}
}

func TestAverageUtilizationNonzeroOnly(t *testing.T) {
	inst := inst2()
	// Both VMs on server 2: idle server 1 and idle time units must not
	// dilute the average.
	u, err := AverageUtilization(inst, map[int]int{1: 2, 2: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Server 2: t=1,2 → 5/20; t=3,4 → 15/20; t=5,6 → 10/20. 6 samples.
	wantCPU := (2*0.25 + 2*0.75 + 2*0.5) / 6
	if math.Abs(u.CPU-wantCPU) > 1e-12 {
		t.Errorf("CPU = %g, want %g", u.CPU, wantCPU)
	}
}

func TestAverageUtilizationOverlapAggregation(t *testing.T) {
	// Two VMs overlapping on the same server add their demands.
	inst := model.NewInstance(
		[]model.VM{
			{ID: 1, Demand: model.Resources{CPU: 4, Mem: 4}, Start: 1, End: 2},
			{ID: 2, Demand: model.Resources{CPU: 4, Mem: 4}, Start: 2, End: 3},
		},
		[]model.Server{{ID: 1, Capacity: model.Resources{CPU: 8, Mem: 8}, PIdle: 1, PPeak: 2}},
	)
	u, err := AverageUtilization(inst, map[int]int{1: 1, 2: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := (0.5 + 1.0 + 0.5) / 3
	if math.Abs(u.CPU-want) > 1e-12 || math.Abs(u.Mem-want) > 1e-12 {
		t.Errorf("utilization = %+v, want %g", u, want)
	}
}

func TestAverageUtilizationErrors(t *testing.T) {
	inst := inst2()
	if _, err := AverageUtilization(inst, map[int]int{1: 1}); err == nil {
		t.Error("want error for unplaced VM")
	}
	if _, err := AverageUtilization(inst, map[int]int{1: 9, 2: 9}); err == nil {
		t.Error("want error for unknown server")
	}
}

func TestUtilizationImbalance(t *testing.T) {
	u := Utilization{CPU: 0.7, Mem: 0.3}
	if got := u.Imbalance(); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("Imbalance = %g, want 0.4", got)
	}
	u = Utilization{CPU: 0.3, Mem: 0.7}
	if got := u.Imbalance(); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("Imbalance = %g, want 0.4 (symmetric)", got)
	}
}

func TestPeakConcurrency(t *testing.T) {
	inst := model.NewInstance(
		[]model.VM{
			{ID: 1, Demand: model.Resources{CPU: 1, Mem: 1}, Start: 1, End: 5},
			{ID: 2, Demand: model.Resources{CPU: 1, Mem: 1}, Start: 3, End: 8},
			{ID: 3, Demand: model.Resources{CPU: 1, Mem: 1}, Start: 5, End: 6},
			{ID: 4, Demand: model.Resources{CPU: 1, Mem: 1}, Start: 9, End: 9},
		},
		[]model.Server{{ID: 1, Capacity: model.Resources{CPU: 8, Mem: 8}, PIdle: 1, PPeak: 2}},
	)
	if got := PeakConcurrency(inst); got != 3 {
		t.Errorf("PeakConcurrency = %d, want 3 (t=5)", got)
	}
}

func TestActiveServersSeries(t *testing.T) {
	// Server 1: α = 200 (PPeak 200 × 1 min), PIdle 100 → bridges gaps ≤ 2.
	srv1 := model.Server{ID: 1, Capacity: model.Resources{CPU: 10, Mem: 10}, PIdle: 100, PPeak: 200, TransitionTime: 1}
	srv2 := model.Server{ID: 2, Capacity: model.Resources{CPU: 10, Mem: 10}, PIdle: 100, PPeak: 200, TransitionTime: 1}
	inst := model.NewInstance(
		[]model.VM{
			{ID: 1, Demand: model.Resources{CPU: 2, Mem: 2}, Start: 1, End: 3},
			{ID: 2, Demand: model.Resources{CPU: 2, Mem: 2}, Start: 6, End: 8},   // gap of 2 → bridged
			{ID: 3, Demand: model.Resources{CPU: 2, Mem: 2}, Start: 2, End: 4},   // on server 2
			{ID: 4, Demand: model.Resources{CPU: 2, Mem: 2}, Start: 10, End: 12}, // gap of 5 on server 2 → off
		},
		[]model.Server{srv1, srv2},
	)
	series, err := ActiveServersSeries(inst, map[int]int{1: 1, 2: 1, 3: 2, 4: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != inst.Horizon {
		t.Fatalf("series length %d, want %d", len(series), inst.Horizon)
	}
	// Server 1 active [1,8] (bridged); server 2 active [2,4] and [10,12].
	want := []int{1, 2, 2, 2, 1, 1, 1, 1, 0, 1, 1, 1}
	for i, w := range want {
		if series[i] != w {
			t.Fatalf("series = %v, want %v (differs at t=%d)", series, want, i+1)
		}
	}
	if _, err := ActiveServersSeries(inst, map[int]int{1: 1}); err == nil {
		t.Error("unplaced VM accepted")
	}
	if _, err := ActiveServersSeries(inst, map[int]int{1: 9, 2: 9, 3: 9, 4: 9}); err == nil {
		t.Error("unknown server accepted")
	}
}
