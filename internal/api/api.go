// Package api is the versioned wire contract of the vmserve HTTP API:
// the typed request/response bodies exchanged on the /v1 endpoints, the
// structured error envelope, and the shared body decoder. It is the
// single source of truth for the JSON field names — the server
// (internal/clusterhttp) encodes from these types, and every client (the
// internal/loadgen load-generator client and the internal/shard vmgate
// router) decodes into them, so a router can sit between the two and
// speak the same contract on both sides.
//
// The package is deliberately a leaf: it depends only on the pure data
// packages (internal/model, internal/energy) and the observability
// records (internal/obs), never on the cluster itself, so a routing
// daemon can link the contract without linking an allocator.
//
// Compatibility: the JSON field names are frozen — they are byte-for-byte
// the wire format the service has spoken since the anonymous per-handler
// structs these types replaced (see the pin tests in wire_test.go).
// Decoding is tolerant of unknown fields, so additive evolution within
// /v1 is safe; renames or removals require a /v2.
package api

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"vmalloc/internal/energy"
	"vmalloc/internal/model"
	"vmalloc/internal/obs"
)

// Version is the API version every path in this contract is mounted
// under (e.g. POST /v1/vms).
const Version = "v1"

// StateDigestHeader is the response header on GET /v1/state carrying the
// hex SHA-256 of the body — a single shard's digest from vmserve, the
// combined digest (shard.CombineDigests) from a vmgate.
const StateDigestHeader = "X-Vmalloc-State-Digest"

// AdmitRequest is one VM admission request — the element type of the
// POST /v1/vms body, which is either a single object or an array of
// them.
type AdmitRequest struct {
	// ID identifies the VM; 0 lets the cluster assign the next free ID.
	// Requests routed through a vmgate must carry an explicit ID: the
	// ID is the routing key.
	ID int `json:"id,omitempty"`
	// Type is an optional free-form label.
	Type string `json:"type,omitempty"`
	// Demand is the VM's stable resource demand.
	Demand model.Resources `json:"demand"`
	// Start is the requested start minute; 0 means "now", and a start in
	// the past is clamped to the current clock.
	Start int `json:"start,omitempty"`
	// DurationMinutes is how long the VM runs; must be ≥ 1.
	DurationMinutes int `json:"durationMinutes"`
}

// AdmitResponse is the per-request outcome of an admission call; POST
// /v1/vms responds with an array of them, in request order.
type AdmitResponse struct {
	// ID is the VM's identity (assigned by the cluster when the request
	// left it 0).
	ID int `json:"id"`
	// Accepted reports whether the VM was placed. A false value is the
	// graceful-degradation path: the service stays up and Reason says why.
	Accepted bool `json:"accepted"`
	// Server is the hosting server's ID (not index) when accepted.
	Server int `json:"server,omitempty"`
	// Start and End bound the minutes the VM will occupy; Start includes
	// any wake-up delay beyond the requested start.
	Start int `json:"start,omitempty"`
	End   int `json:"end,omitempty"`
	// Reason explains a rejection.
	Reason string `json:"reason,omitempty"`
}

// ReleaseResponse is the body of a successful DELETE /v1/vms/{id}: the
// placement the released VM had held.
type ReleaseResponse struct {
	// VM is the released VM as admitted (its End reflects the original
	// schedule, not the early release).
	VM model.VM `json:"vm"`
	// Server is the index of the server that hosted the VM in the
	// configured fleet list.
	Server int `json:"server"`
	// Start is the minute the VM actually started (including any wake-up
	// delay).
	Start int `json:"start"`
}

// ClockRequest is the body of POST /v1/clock. Now is a pointer so a
// missing field is distinguishable from an explicit 0 (both are
// rejected, with different messages).
type ClockRequest struct {
	Now *int `json:"now"`
}

// ClockResponse is the body of a successful POST /v1/clock: the fleet
// clock after the advance (the clock is monotonic, so it can exceed the
// requested minute).
type ClockResponse struct {
	Now int `json:"now"`
}

// ServerState is one server's externally visible state within a
// StateResponse.
type ServerState struct {
	ID    int    `json:"id"`
	Type  string `json:"type,omitempty"`
	State string `json:"state"`
	VMs   int    `json:"vms"`
}

// PlacedVM is one resident VM within a StateResponse: the admitted VM,
// the index of its hosting server in the configured fleet list, and its
// actual start minute.
type PlacedVM struct {
	VM     model.VM `json:"vm"`
	Server int      `json:"server"`
	Start  int      `json:"start"`
}

// StateResponse is the body of GET /v1/state: a consistent snapshot of
// one cluster's durable state. Field order and names mirror the
// server's canonical encoding exactly — EncodeState over a decoded
// StateResponse reproduces the served bytes, which is what makes the
// X-Vmalloc-State-Digest header meaningful to clients.
type StateResponse struct {
	Now         int    `json:"now"`
	Policy      string `json:"policy"`
	IdleTimeout int    `json:"idleTimeoutMinutes"`
	Admitted    int    `json:"admitted"`
	Released    int    `json:"released"`
	// Migrations counts live migrations over the cluster lifetime;
	// MigrationSaved sums the planner's net Eq. 17 saving estimates. Both
	// are journaled facts and replay byte-identically.
	Migrations      int              `json:"migrations"`
	MigrationSaved  float64          `json:"migrationSavedWattMinutes"`
	Transitions     int              `json:"transitions"`
	ServersUsed     int              `json:"serversUsed"`
	Energy          energy.Breakdown `json:"energy"`
	TotalEnergy     float64          `json:"totalEnergyWattMinutes"`
	TotalStartDelay int              `json:"totalStartDelayMinutes"`
	MaxStartDelay   int              `json:"maxStartDelayMinutes"`
	Servers         []ServerState    `json:"servers"`
	VMs             []PlacedVM       `json:"vms"`
}

// DecisionsResponse is the body of GET /v1/debug/decisions: the
// flight-recorder readout.
type DecisionsResponse struct {
	Count     int            `json:"count"`
	Decisions []obs.Decision `json:"decisions"`
}

// ShardHealth is one shard's entry in a vmgate's GET /v1/shards
// response.
type ShardHealth struct {
	// Name is the shard's stable routing identity — renaming a shard
	// remaps its whole key range.
	Name string `json:"name"`
	// Addr is the shard's base URL.
	Addr string `json:"addr"`
	// Healthy reports the prober's current verdict.
	Healthy bool `json:"healthy"`
	// Weight is the shard's rendezvous weight (1 when unweighted).
	Weight float64 `json:"weight,omitempty"`
	// Error is the last probe or proxy failure while unhealthy.
	Error string `json:"error,omitempty"`
}

// ShardsResponse is the body of a vmgate's GET /v1/shards.
type ShardsResponse struct {
	// Epoch is the topology epoch the health table was taken under (0
	// for unversioned -shard deployments).
	Epoch  int64         `json:"epoch,omitempty"`
	Count  int           `json:"count"`
	Shards []ShardHealth `json:"shards"`
}

// ShardState is one shard's slice of a vmgate's aggregated GET
// /v1/state response.
type ShardState struct {
	Shard string `json:"shard"`
	Addr  string `json:"addr"`
	// Digest is the shard's own X-Vmalloc-State-Digest for the nested
	// State — the per-shard fingerprint the gate's combined digest is
	// built from.
	Digest string         `json:"digest"`
	State  *StateResponse `json:"state"`
}

// GateStateResponse is the body of a vmgate's GET /v1/state: every
// shard's state plus cross-shard aggregates. Digest is the combined
// fingerprint (see shard.CombineDigests): it changes exactly when some
// shard's state digest changes.
type GateStateResponse struct {
	// Now is the slowest shard's clock: every shard is at least here.
	Now int `json:"now"`
	// Aggregates over all shards.
	Admitted       int     `json:"admitted"`
	Released       int     `json:"released"`
	Migrations     int     `json:"migrations"`
	MigrationSaved float64 `json:"migrationSavedWattMinutes"`
	Residents      int     `json:"residents"`
	ServersUsed    int     `json:"serversUsed"`
	TotalEnergy    float64 `json:"totalEnergyWattMinutes"`
	// Digest is the combined per-shard digest, also served as the
	// X-Vmalloc-State-Digest header.
	Digest string `json:"digest"`
	// PlacementDigest fingerprints only VM residency — (id, owning
	// shard, start, end, demand), independent of which path placed each
	// VM there (see shard.PlacementDigest). Two deployments that agree
	// here host the same VMs on the same schedule even if their
	// per-shard counters (and therefore Digest) differ, which is what
	// makes a resized deployment comparable to a never-resized control.
	PlacementDigest string       `json:"placementDigest,omitempty"`
	Shards          []ShardState `json:"shards"`
}

// ErrBodyTooLarge is returned by DecodeAdmitRequests for bodies over the
// limit; HTTP layers map it to 413 instead of 400 — the request was
// refused for its size, not its syntax.
var ErrBodyTooLarge = errors.New("request body exceeds the configured limit")

// DecodeAdmitRequests parses a POST /v1/vms body — a single AdmitRequest
// object or a non-empty array of them — refusing bodies larger than
// limit bytes with ErrBodyTooLarge. Unknown fields are tolerated. Both
// the server and the vmgate router decode admission bodies through this
// one function, so they can never disagree on what parses.
func DecodeAdmitRequests(r io.Reader, limit int64) ([]AdmitRequest, error) {
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("%w (%d bytes)", ErrBodyTooLarge, limit)
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "[") {
		var reqs []AdmitRequest
		if err := json.Unmarshal(data, &reqs); err != nil {
			return nil, fmt.Errorf("parse request array: %w", err)
		}
		if len(reqs) == 0 {
			return nil, errors.New("empty request array")
		}
		return reqs, nil
	}
	var req AdmitRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("parse request: %w", err)
	}
	return []AdmitRequest{req}, nil
}

// EncodeState marshals a state body exactly as the server serves it:
// deterministic two-space-indented JSON with a trailing newline. Digest
// over these bytes (DigestBytes) equals the X-Vmalloc-State-Digest
// header a server would send for the same state.
func EncodeState(st *StateResponse) ([]byte, error) {
	return encodeIndented(st)
}

// EncodeGateState marshals a vmgate's aggregated state the same way.
func EncodeGateState(st *GateStateResponse) ([]byte, error) {
	return encodeIndented(st)
}

func encodeIndented(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DigestBytes is the wire-level state fingerprint: hex SHA-256 of the
// given bytes. It matches cluster.DigestBytes, re-exported here so
// clients and routers can fingerprint state bodies without linking the
// allocator.
func DigestBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
