package api

import (
	"encoding/json"
	"fmt"
	"io"

	"vmalloc/internal/model"
)

// EpochHeader carries the sender's topology epoch on requests into the
// serving tier. Shards remember the highest epoch they have seen and
// answer anything older with 409 stale_epoch — a passive fence: a gate
// or client still routing on a superseded shard set is told so by the
// first shard the newer topology has already touched, instead of
// silently splitting VMs across two views of the cluster. Requests
// without the header (single-shard deployments, curl) pass unfenced.
const EpochHeader = "X-Vmalloc-Epoch"

// TopologyShard is one shard entry of a versioned topology: routing
// name, base URL, and rendezvous weight (0 means 1).
type TopologyShard struct {
	Name   string  `json:"name"`
	URL    string  `json:"url"`
	Weight float64 `json:"weight,omitempty"`
}

// Topology is the versioned shard-set wire type — both the
// topology.json file cmd/vmgate loads at startup and the request body
// of POST /v1/topology. Epochs must be ≥ 1 and strictly increase
// across changes; the epoch, not file mtime or request order, decides
// which topology is newest.
type Topology struct {
	Epoch  int64           `json:"epoch"`
	Shards []TopologyShard `json:"shards"`
}

// RebalanceStatus reports the gate's background drain after a topology
// change: how many VMs the resize planner remapped (Planned), and how
// many have been moved to their new owner, skipped (departed naturally
// before their turn), or failed so far. Active is false once the drain
// finished; FromEpoch/ToEpoch identify the transition while one is in
// flight.
type RebalanceStatus struct {
	Active    bool   `json:"active"`
	FromEpoch int64  `json:"fromEpoch,omitempty"`
	ToEpoch   int64  `json:"toEpoch,omitempty"`
	Planned   int    `json:"planned"`
	Moved     int    `json:"moved"`
	Skipped   int    `json:"skipped"`
	Failed    int    `json:"failed"`
	LastError string `json:"lastError,omitempty"`
}

// TopologyResponse is the body of GET /v1/topology: the gate's current
// topology plus the state of the most recent rebalance.
type TopologyResponse struct {
	Epoch     int64           `json:"epoch"`
	Shards    []TopologyShard `json:"shards"`
	Rebalance RebalanceStatus `json:"rebalance"`
}

// DecodeTopology decodes a Topology from a topology file or a
// POST /v1/topology body, reading at most limit bytes (limit <= 0 uses
// a 1 MiB default — topologies are small). Structural validation only —
// shard-set rules (unique names, weight ranges) live in shard.NewMap.
func DecodeTopology(r io.Reader, limit int64) (Topology, error) {
	if limit <= 0 {
		limit = 1 << 20
	}
	data, err := readLimited(r, limit)
	if err != nil {
		return Topology{}, err
	}
	if data == nil {
		return Topology{}, fmt.Errorf("empty topology")
	}
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return Topology{}, fmt.Errorf("invalid topology: %w", err)
	}
	if t.Epoch < 1 {
		return Topology{}, fmt.Errorf("invalid topology: epoch %d, want ≥ 1", t.Epoch)
	}
	if len(t.Shards) == 0 {
		return Topology{}, fmt.Errorf("invalid topology: no shards")
	}
	return t, nil
}

// AdoptRequest is the body of POST /v1/adoptions: place an already-
// running VM on this shard, preserving the identity it acquired on its
// original owner. Start is the actual start time granted at first
// admission — the adopted placement keeps it (and with it the VM's
// (start, end) interval and departure time), unlike a fresh admission,
// which would re-normalize a past start to the current clock. The
// gate's rebalancer is the intended caller, but the endpoint is plain
// HTTP: replaying it is idempotent (an identical resident placement is
// re-acknowledged, not duplicated).
type AdoptRequest struct {
	VM    model.VM `json:"vm"`
	Start int      `json:"start"`
}

// AdoptResponse acknowledges an adoption: where the VM landed and from
// which time unit this shard starts accounting for it (Handoff). The
// interval [Start, End] is the VM's original residency, unchanged.
type AdoptResponse struct {
	VM      int `json:"vm"`
	Server  int `json:"server"`
	Start   int `json:"start"`
	End     int `json:"end"`
	Handoff int `json:"handoff"`
}

// DecodeAdoptRequest decodes an AdoptRequest, reading at most limit
// bytes (limit <= 0 uses a 1 MiB default).
func DecodeAdoptRequest(r io.Reader, limit int64) (AdoptRequest, error) {
	if limit <= 0 {
		limit = 1 << 20
	}
	data, err := readLimited(r, limit)
	if err != nil {
		return AdoptRequest{}, err
	}
	if data == nil {
		return AdoptRequest{}, fmt.Errorf("empty adoption request")
	}
	var req AdoptRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return AdoptRequest{}, fmt.Errorf("invalid adoption request: %w", err)
	}
	if err := req.VM.Validate(); err != nil {
		return AdoptRequest{}, fmt.Errorf("invalid adoption request: %w", err)
	}
	if req.Start < req.VM.Start {
		return AdoptRequest{}, fmt.Errorf("invalid adoption request: actual start %d before requested start %d", req.Start, req.VM.Start)
	}
	return req, nil
}
