// Debug-surface wire types: GET /v1/debug/traces and
// GET /v1/debug/energy on both vmserve shards and the vmgate (the gate
// stitches shard traces into one tree and aggregates shard energy).
// These follow the same contract rules as the rest of the package:
// field names are frozen, evolution is additive.

package api

import (
	"sort"

	"vmalloc/internal/obs"
)

// Trace is one distributed trace: every recorded span sharing a trace
// id, ordered by start time. The spans form a tree via Span.Parent —
// on the gate, the tree crosses processes (gate route → per-shard
// fan-out → shard route → shard stages) because the gate propagates its
// fan-out span id as the shard edge's parent.
type Trace struct {
	TraceID string     `json:"traceId"`
	Spans   []obs.Span `json:"spans"`
}

// TracesResponse is the body of GET /v1/debug/traces.
type TracesResponse struct {
	// Count is the number of traces; Spans the total spans across them.
	Count  int     `json:"count"`
	Spans  int     `json:"spans"`
	Traces []Trace `json:"traces"`
}

// GroupSpans assembles flat spans (possibly from several stores — the
// gate merges its own with shard-fetched ones) into traces. Traces are
// ordered by their earliest span start (trace id breaking ties); spans
// within a trace by (start, trace-store seq, span id), which puts
// parents before children for the sequential pipeline stages.
func GroupSpans(spans []obs.Span) []Trace {
	byID := map[string]int{}
	var out []Trace
	for _, sp := range spans {
		i, ok := byID[sp.TraceID]
		if !ok {
			i = len(out)
			byID[sp.TraceID] = i
			out = append(out, Trace{TraceID: sp.TraceID})
		}
		out[i].Spans = append(out[i].Spans, sp)
	}
	for i := range out {
		sort.SliceStable(out[i].Spans, func(a, b int) bool {
			sa, sb := &out[i].Spans[a], &out[i].Spans[b]
			if !sa.Start.Equal(sb.Start) {
				return sa.Start.Before(sb.Start)
			}
			if sa.Seq != sb.Seq {
				return sa.Seq < sb.Seq
			}
			return sa.SpanID < sb.SpanID
		})
	}
	sort.SliceStable(out, func(a, b int) bool {
		sa, sb := out[a].Spans[0].Start, out[b].Spans[0].Start
		if !sa.Equal(sb) {
			return sa.Before(sb)
		}
		return out[a].TraceID < out[b].TraceID
	})
	return out
}

// EnergyResponse is the body of a shard's GET /v1/debug/energy: the
// windowed energy-over-time series. Samples are strictly monotone in
// fleet clock, and the newest sample's cumulative total equals the
// cluster's reported total energy at that clock, so integrating
// rateWatts over the clock deltas reproduces the total.
type EnergyResponse struct {
	Count int `json:"count"`
	// Now and TotalWattMinutes mirror the newest sample (0 when the
	// recorder is empty or disabled).
	Now              int                `json:"now"`
	TotalWattMinutes float64            `json:"totalWattMinutes"`
	Samples          []obs.EnergySample `json:"samples"`
}

// ShardEnergy is one shard's energy series inside the gate response.
type ShardEnergy struct {
	Shard  string         `json:"shard"`
	Energy EnergyResponse `json:"energy"`
}

// GateEnergyResponse is the body of the gate's GET /v1/debug/energy:
// per-shard series plus the fleet-wide cumulative total (the sum of
// shard totals, the same aggregation /v1/state applies to energy).
type GateEnergyResponse struct {
	// Now is the minimum shard clock (the fleet-wide time up to which
	// every shard's series is complete).
	Now              int           `json:"now"`
	TotalWattMinutes float64       `json:"totalWattMinutes"`
	Shards           []ShardEnergy `json:"shards"`
}
