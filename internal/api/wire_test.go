package api

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"vmalloc/internal/energy"
	"vmalloc/internal/model"
	"vmalloc/internal/obs"
)

// populated returns one fully populated value per wire type. Every field
// is non-zero so the round-trip test cannot pass by accident through
// omitempty.
func populated() map[string]any {
	vm := model.VM{ID: 7, Type: "c4.large", Demand: model.Resources{CPU: 2, Mem: 4}, Start: 3, End: 42}
	st := &StateResponse{
		Now: 9, Policy: "mincost", IdleTimeout: 2,
		Admitted: 5, Released: 1, Migrations: 2, MigrationSaved: 1.25,
		Transitions: 3, ServersUsed: 2,
		Energy:      energy.Breakdown{Run: 1.5, Idle: 2.25, Transition: 0.5},
		TotalEnergy: 4.25, TotalStartDelay: 6, MaxStartDelay: 4,
		Servers: []ServerState{{ID: 1, Type: "A", State: "active", VMs: 2}},
		VMs:     []PlacedVM{{VM: vm, Server: 0, Start: 3}},
	}
	mig := MigrationRecord{
		Seq: 11, VM: 7, From: 1, To: 2, Time: 9, Handoff: 10, Start: 3, End: 42,
		Policy: PolicyMinMigrationTime, SavedWattMinutes: 3.5, CostWattMinutes: 0.4, Shard: "a",
	}
	target := 2
	now := 17
	return map[string]any{
		"AdmitRequest":  &AdmitRequest{ID: 7, Type: "c4.large", Demand: model.Resources{CPU: 2, Mem: 4}, Start: 3, DurationMinutes: 40},
		"AdmitResponse": &AdmitResponse{ID: 7, Accepted: true, Server: 2, Start: 3, End: 42, Reason: "x"},
		"ReleaseResponse": &ReleaseResponse{
			VM: vm, Server: 1, Start: 3,
		},
		"ClockRequest":       &ClockRequest{Now: &now},
		"ClockResponse":      &ClockResponse{Now: 17},
		"StateResponse":      st,
		"MigrateRequest":     &MigrateRequest{VM: 7, Server: &target},
		"ConsolidateRequest": &ConsolidateRequest{Policy: PolicyMinUtilization, MaxMoves: 3},
		"ConsolidateResponse": &ConsolidateResponse{
			Clock: 9, Policy: PolicyMinMigrationTime, Donors: 2, Executed: 1,
			EnergySavedWattMinutes: 3.5, Moves: []MigrationRecord{mig},
		},
		"MigrationsResponse": &MigrationsResponse{Count: 4, Migrations: []MigrationRecord{mig}},
		"DecisionsResponse": &DecisionsResponse{Count: 1, Decisions: []obs.Decision{{
			Seq: 1, RequestID: "abc", Batch: 2, Op: obs.OpAdmit, VM: 7, Server: 2,
			Start: 3, End: 42, Clock: 3, Candidates: 4, Infeasible: 1,
		}}},
		"ShardsResponse": &ShardsResponse{Count: 1, Shards: []ShardHealth{{Name: "a", Addr: "http://x", Healthy: true, Error: "e"}}},
		"GateStateResponse": &GateStateResponse{
			Now: 9, Admitted: 5, Released: 1, Migrations: 2, MigrationSaved: 1.25,
			Residents: 4, ServersUsed: 2,
			TotalEnergy: 4.25, Digest: "d",
			Shards: []ShardState{{Shard: "a", Addr: "http://x", Digest: "d1", State: st}},
		},
		"ErrorEnvelope": &ErrorEnvelope{Code: CodeShardDown, Message: "shard b down", RequestID: "abc"},
	}
}

// TestRoundTrip: encode → decode → re-encode must be the identity for
// every wire type, so nothing is lost crossing the wire in either
// direction.
func TestRoundTrip(t *testing.T) {
	for name, v := range populated() {
		t.Run(name, func(t *testing.T) {
			b, err := json.Marshal(v)
			if err != nil {
				t.Fatal(err)
			}
			out := reflect.New(reflect.TypeOf(v).Elem()).Interface()
			if err := json.Unmarshal(b, out); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(v, out) {
				t.Fatalf("round trip diverged:\n in: %+v\nout: %+v", v, out)
			}
			b2, err := json.Marshal(out)
			if err != nil {
				t.Fatal(err)
			}
			if string(b) != string(b2) {
				t.Fatalf("re-encode diverged:\n in: %s\nout: %s", b, b2)
			}
		})
	}
}

// TestUnknownFieldTolerance: every wire type must decode bodies carrying
// fields it does not know — additive server-side evolution within /v1
// must not break deployed clients.
func TestUnknownFieldTolerance(t *testing.T) {
	for name, v := range populated() {
		t.Run(name, func(t *testing.T) {
			b, err := json.Marshal(v)
			if err != nil {
				t.Fatal(err)
			}
			// Splice an unknown field into the top-level object.
			widened := `{"someFutureField":{"nested":[1,2,3]},` + strings.TrimPrefix(string(b), "{")
			out := reflect.New(reflect.TypeOf(v).Elem()).Interface()
			if err := json.Unmarshal([]byte(widened), out); err != nil {
				t.Fatalf("decode with unknown field: %v", err)
			}
			if !reflect.DeepEqual(v, out) {
				t.Fatalf("unknown field corrupted decode:\n in: %+v\nout: %+v", v, out)
			}
		})
	}
}

// TestWireFieldNames pins the JSON key set of each type against the
// names the pre-api anonymous structs put on the wire. A failure here is
// a breaking change to deployed clients: add a /v2 instead.
func TestWireFieldNames(t *testing.T) {
	pins := map[string][]string{
		"AdmitRequest":        {"id", "type", "demand", "start", "durationMinutes"},
		"AdmitResponse":       {"id", "accepted", "server", "start", "end", "reason"},
		"ReleaseResponse":     {"vm", "server", "start"},
		"ClockRequest":        {"now"},
		"ClockResponse":       {"now"},
		"StateResponse":       {"now", "policy", "idleTimeoutMinutes", "admitted", "released", "migrations", "migrationSavedWattMinutes", "transitions", "serversUsed", "energy", "totalEnergyWattMinutes", "totalStartDelayMinutes", "maxStartDelayMinutes", "servers", "vms"},
		"DecisionsResponse":   {"count", "decisions"},
		"ErrorEnvelope":       {"code", "error", "requestId"},
		"MigrateRequest":      {"vm", "server"},
		"ConsolidateRequest":  {"policy", "maxMoves"},
		"ConsolidateResponse": {"clock", "policy", "donors", "executed", "energySavedWattMinutes", "moves"},
		"MigrationsResponse":  {"count", "migrations"},
	}
	vals := populated()
	for name, want := range pins {
		t.Run(name, func(t *testing.T) {
			b, err := json.Marshal(vals[name])
			if err != nil {
				t.Fatal(err)
			}
			var m map[string]json.RawMessage
			if err := json.Unmarshal(b, &m); err != nil {
				t.Fatal(err)
			}
			for _, key := range want {
				if _, ok := m[key]; !ok {
					t.Errorf("wire key %q missing from %s", key, b)
				}
				delete(m, key)
			}
			for key := range m {
				t.Errorf("unexpected wire key %q in %s", key, name)
			}
		})
	}
}

// TestDecodeAdmitRequests covers the shared body decoder: object vs
// array form, the size limit, and rejection of empty arrays.
func TestDecodeAdmitRequests(t *testing.T) {
	one := `{"id":3,"demand":{"cpu":1,"mem":1},"durationMinutes":30}`
	reqs, err := DecodeAdmitRequests(strings.NewReader(one), 1<<20)
	if err != nil || len(reqs) != 1 || reqs[0].ID != 3 {
		t.Fatalf("single object: %v %+v", err, reqs)
	}
	reqs, err = DecodeAdmitRequests(strings.NewReader("["+one+","+one+"]"), 1<<20)
	if err != nil || len(reqs) != 2 {
		t.Fatalf("array: %v %+v", err, reqs)
	}
	if _, err := DecodeAdmitRequests(strings.NewReader("[]"), 1<<20); err == nil {
		t.Fatal("empty array accepted")
	}
	if _, err := DecodeAdmitRequests(strings.NewReader(one), 8); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized body: %v", err)
	}
	// Unknown fields inside an admission body are tolerated.
	if _, err := DecodeAdmitRequests(strings.NewReader(`{"durationMinutes":1,"futureKnob":true}`), 1<<20); err != nil {
		t.Fatalf("unknown field refused: %v", err)
	}
}

// TestDecodeMigrateRequest covers the POST /v1/migrations body decoder:
// required fields, the size limit, and unknown-field tolerance.
func TestDecodeMigrateRequest(t *testing.T) {
	req, err := DecodeMigrateRequest(strings.NewReader(`{"vm":7,"server":2,"future":1}`), 1<<20)
	if err != nil || req.VM != 7 || req.Server == nil || *req.Server != 2 {
		t.Fatalf("valid body: %v %+v", err, req)
	}
	if _, err := DecodeMigrateRequest(strings.NewReader(`{"server":2}`), 1<<20); err == nil {
		t.Fatal("missing vm accepted")
	}
	if _, err := DecodeMigrateRequest(strings.NewReader(`{"vm":7}`), 1<<20); err == nil {
		t.Fatal("missing server accepted")
	}
	if _, err := DecodeMigrateRequest(strings.NewReader(`{"vm":7,"server":2}`), 4); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized body: %v", err)
	}
}

// TestDecodeConsolidateRequest: an empty (or whitespace) body is the zero
// request; policies are validated at decode time.
func TestDecodeConsolidateRequest(t *testing.T) {
	req, err := DecodeConsolidateRequest(strings.NewReader("  \n"), 1<<20)
	if err != nil || req.Policy != "" || req.MaxMoves != 0 {
		t.Fatalf("empty body: %v %+v", err, req)
	}
	req, err = DecodeConsolidateRequest(strings.NewReader(`{"policy":"min-utilization","maxMoves":3}`), 1<<20)
	if err != nil || req.Policy != PolicyMinUtilization || req.MaxMoves != 3 {
		t.Fatalf("valid body: %v %+v", err, req)
	}
	if _, err := DecodeConsolidateRequest(strings.NewReader(`{"policy":"random"}`), 1<<20); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := DecodeConsolidateRequest(strings.NewReader(`{"maxMoves":-1}`), 1<<20); err == nil {
		t.Fatal("negative maxMoves accepted")
	}
}

// TestDecodeError: envelope bodies decode structurally; garbage bodies
// degrade to the trimmed text.
func TestDecodeError(t *testing.T) {
	e := DecodeError(503, []byte(`{"code":"shard_down","error":"shard b down","requestId":"r1"}`))
	if e.Status != 503 || e.Envelope.Code != CodeShardDown || e.Envelope.RequestID != "r1" {
		t.Fatalf("envelope decode: %+v", e)
	}
	if !strings.Contains(e.Error(), "shard_down") {
		t.Fatalf("Error() lacks the code: %s", e.Error())
	}
	e = DecodeError(502, []byte("  bad gateway\n"))
	if e.Envelope.Message != "bad gateway" || e.Envelope.Code != "" {
		t.Fatalf("plain-text fallback: %+v", e)
	}
}

// TestDigestBytes pins the fingerprint function against a fixed vector.
func TestDigestBytes(t *testing.T) {
	got := DigestBytes([]byte("vmalloc"))
	if len(got) != 64 {
		t.Fatalf("digest %q is not hex SHA-256", got)
	}
	if got != DigestBytes([]byte("vmalloc")) {
		t.Fatal("digest is not deterministic")
	}
	if got == DigestBytes([]byte("vmalloc2")) {
		t.Fatal("digest ignores input")
	}
}
