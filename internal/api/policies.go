package api

// PolicyReport is one shadow challenger's counterfactual scoreboard
// within a PoliciesResponse: what that policy's private replica fleet
// did with the same traffic the champion served.
type PolicyReport struct {
	// Name is the challenger's registration name (the -shadow-policy
	// spec on vmserve).
	Name string `json:"name"`
	// Policy is the underlying placement policy's self-reported name.
	Policy string `json:"policy"`
	// Decisions counts admissions the challenger scored.
	Decisions uint64 `json:"decisions"`
	// Divergences counts decisions whose chosen server differed from
	// the champion's (accept/reject disagreements included);
	// DivergencePct is Divergences/Decisions as a percentage.
	Divergences   uint64  `json:"divergences"`
	DivergencePct float64 `json:"divergencePct"`
	// Rejections counts admissions the challenger turned down;
	// ChampionRejections counts the champion's rejections among the
	// same decisions, and RejectionDelta is challenger minus champion
	// (negative: the challenger rejected less).
	Rejections         uint64 `json:"rejections"`
	ChampionRejections uint64 `json:"championRejections"`
	RejectionDelta     int64  `json:"rejectionDelta"`
	// EnergyWattMinutes is the challenger replica fleet's own energy
	// integral at its clock — the counterfactual Eq. 17 figure — and
	// EnergyDeltaWattMinutes is challenger minus champion (negative:
	// the challenger would have used less energy).
	EnergyWattMinutes      float64 `json:"energyWattMinutes"`
	EnergyDeltaWattMinutes float64 `json:"energyDeltaWattMinutes"`
	// Residents is the replica fleet's current resident-VM count.
	Residents int `json:"residents"`
	// Clock is the replica fleet's clock, in fleet minutes.
	Clock int `json:"clock"`
	// Shard names the shard this report came from in a vmgate's merged
	// response; empty on a single vmserve.
	Shard string `json:"shard,omitempty"`
}

// PoliciesResponse is the body of GET /v1/policies: the shadow arena's
// per-challenger counterfactual reports next to the champion's own
// figures. A vmserve with no arena serves an empty report list with
// the champion's identity still filled in; a vmgate merges the shards'
// responses, stamping each report's Shard.
type PoliciesResponse struct {
	// Champion is the live placement policy's name. A vmgate joins
	// distinct per-shard champions with ", ".
	Champion string `json:"champion"`
	// ChampionEnergyWattMinutes is the live fleet's energy integral at
	// Now (summed across shards on a vmgate).
	ChampionEnergyWattMinutes float64 `json:"championEnergyWattMinutes"`
	// Now is the live fleet clock (the slowest shard's on a vmgate).
	// Challenger clocks can trail it by whatever is still queued in the
	// arena.
	Now int `json:"now"`
	// EvaluatedBatches counts admission batches applied to the replicas;
	// DroppedEvents counts arena events discarded on queue overflow.
	EvaluatedBatches uint64 `json:"evaluatedBatches"`
	DroppedEvents    uint64 `json:"droppedEvents"`
	// Count is len(Policies).
	Count    int            `json:"count"`
	Policies []PolicyReport `json:"policies"`
}
