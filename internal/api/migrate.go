package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Victim-selection policies accepted by ConsolidateRequest.Policy. They
// order which servers drain first and which VMs move first within a
// drain; both execute full evacuations under the same pay-for-itself
// rule.
const (
	// PolicyMinMigrationTime prefers the cheapest moves: servers with the
	// least resident memory drain first, smallest-memory VMs first
	// (migration time is proportional to memory, the MMT heuristic).
	PolicyMinMigrationTime = "min-migration-time"
	// PolicyMinUtilization drains the least CPU-utilised servers first,
	// lowest-demand VMs first.
	PolicyMinUtilization = "min-utilization"
)

// MigrationRecord is the uniform wire shape of one live migration. The
// same record type appears everywhere a migration is reported — the GET
// /v1/migrations history, the POST /v1/migrations and /v1/consolidate
// responses, and a vmgate's merged views — never a per-route variant.
type MigrationRecord struct {
	// Seq is the journal sequence number of the migrate record; migrations
	// are durable mutations and replay byte-identically.
	Seq int64 `json:"seq"`
	// VM is the migrated VM's ID.
	VM int `json:"vm"`
	// From and To are server IDs (not indexes).
	From int `json:"from"`
	To   int `json:"to"`
	// Time is the fleet minute the migration executed.
	Time int `json:"time"`
	// Handoff is the first minute the target hosts the VM: the minute
	// after Time for a started VM, the VM's own start otherwise.
	Handoff int `json:"handoff"`
	// Start and End are the VM's (start, end) identity — unchanged by the
	// migration, by construction.
	Start int `json:"start"`
	End   int `json:"end"`
	// Policy is the victim-selection policy of the consolidation pass that
	// planned the move, or "manual" for a direct POST /v1/migrations.
	Policy string `json:"policy,omitempty"`
	// SavedWattMinutes is the planner's net Eq. 17 estimate for the move
	// (a consolidation pass apportions its donor-drain saving evenly over
	// the drain's moves); 0 for manual migrations.
	SavedWattMinutes float64 `json:"savedWattMinutes"`
	// CostWattMinutes is the migration overhead the pay-for-itself rule
	// charged: cost-per-GB × the VM's memory demand.
	CostWattMinutes float64 `json:"costWattMinutes"`
	// Shard names the owning shard in vmgate-merged views; empty from a
	// single vmserve.
	Shard string `json:"shard,omitempty"`
}

// MigrateRequest is the body of POST /v1/migrations: move one resident VM
// to a named server now. The response is the resulting MigrationRecord.
type MigrateRequest struct {
	// VM is the resident VM to move; required.
	VM int `json:"vm"`
	// Server is the target server's ID (not index); required.
	Server *int `json:"server"`
}

// ConsolidateRequest is the body of POST /v1/consolidate. An empty body
// is valid: every field has a server-side default.
type ConsolidateRequest struct {
	// Policy overrides the configured victim-selection policy for this
	// pass (PolicyMinMigrationTime or PolicyMinUtilization).
	Policy string `json:"policy,omitempty"`
	// MaxMoves caps the number of migrations this pass may execute; 0
	// means the configured default (unlimited when that is also 0).
	MaxMoves int `json:"maxMoves,omitempty"`
}

// ConsolidateResponse is the body of a successful POST /v1/consolidate:
// one pass's outcome. A pass that finds nothing worth moving is a
// success with zero moves — the pay-for-itself rule refusing a drain is
// the intended behaviour, not an error.
type ConsolidateResponse struct {
	// Clock is the fleet minute the pass ran at (a vmgate reports the
	// slowest shard's).
	Clock int `json:"clock"`
	// Policy is the victim-selection policy the pass used.
	Policy string `json:"policy"`
	// Donors is the number of under-utilised servers whose drain was
	// evaluated; Executed counts the migrations actually performed.
	Donors   int `json:"donors"`
	Executed int `json:"executed"`
	// EnergySavedWattMinutes is the summed net Eq. 17 saving of the
	// executed drains.
	EnergySavedWattMinutes float64 `json:"energySavedWattMinutes"`
	// Moves lists the executed migrations.
	Moves []MigrationRecord `json:"moves"`
}

// MigrationsResponse is the body of GET /v1/migrations. Count is the
// cluster-lifetime migration total; Migrations is the retained history
// (bounded, oldest evicted first), oldest first.
type MigrationsResponse struct {
	Count      int               `json:"count"`
	Migrations []MigrationRecord `json:"migrations"`
}

// DecodeMigrateRequest parses a POST /v1/migrations body, enforcing the
// same size limit discipline as DecodeAdmitRequests. Both vmserve and
// vmgate decode migration bodies through this one function.
func DecodeMigrateRequest(r io.Reader, limit int64) (MigrateRequest, error) {
	var req MigrateRequest
	data, err := readLimited(r, limit)
	if err != nil {
		return req, err
	}
	if err := json.Unmarshal(data, &req); err != nil {
		return req, fmt.Errorf("parse request: %w", err)
	}
	if req.VM < 1 {
		return req, fmt.Errorf("missing or invalid vm id %d", req.VM)
	}
	if req.Server == nil {
		return req, errors.New("missing target server")
	}
	return req, nil
}

// DecodeConsolidateRequest parses a POST /v1/consolidate body. An empty
// body decodes to the zero request (all server-side defaults).
func DecodeConsolidateRequest(r io.Reader, limit int64) (ConsolidateRequest, error) {
	var req ConsolidateRequest
	data, err := readLimited(r, limit)
	if err != nil {
		return req, err
	}
	if len(data) == 0 {
		return req, nil
	}
	if err := json.Unmarshal(data, &req); err != nil {
		return req, fmt.Errorf("parse request: %w", err)
	}
	if req.Policy != "" && req.Policy != PolicyMinMigrationTime && req.Policy != PolicyMinUtilization {
		return req, fmt.Errorf("unknown policy %q (want %q or %q)", req.Policy, PolicyMinMigrationTime, PolicyMinUtilization)
	}
	if req.MaxMoves < 0 {
		return req, fmt.Errorf("negative maxMoves %d", req.MaxMoves)
	}
	return req, nil
}

// readLimited reads a whole body, refusing more than limit bytes with
// ErrBodyTooLarge, and treats whitespace-only bodies as empty.
func readLimited(r io.Reader, limit int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("%w (%d bytes)", ErrBodyTooLarge, limit)
	}
	trimmed := 0
	for _, b := range data {
		switch b {
		case ' ', '\t', '\r', '\n':
		default:
			trimmed++
		}
	}
	if trimmed == 0 {
		return nil, nil
	}
	return data, nil
}
