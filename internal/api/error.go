package api

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Machine-readable error codes carried in ErrorEnvelope.Code. Clients
// branch on the code, never on the message text.
const (
	// CodeBadRequest: the request could not be parsed or validated
	// (malformed JSON, bad VM id, oversized body, missing clock field).
	CodeBadRequest = "bad_request"
	// CodeNotResident: DELETE /v1/vms/{id} named a VM that is not
	// currently admitted (never was, already departed, already released).
	CodeNotResident = "not_resident"
	// CodeJournalBroken: the cluster's journal failed a write and refuses
	// mutations until a snapshot heals it (cluster.ErrJournalBroken).
	CodeJournalBroken = "journal_broken"
	// CodeOverloaded: the service cannot take the request right now —
	// shutting down (cluster.ErrClosed) or refusing load.
	CodeOverloaded = "overloaded"
	// CodeShardDown: a vmgate could not reach the shard that owns the
	// request's key range; the envelope message names the shard. Only the
	// down shard's key range is affected.
	CodeShardDown = "shard_down"
	// CodeMigrationInfeasible: POST /v1/migrations named a move the
	// current fleet state cannot satisfy — the target lacks capacity over
	// the VM's remaining interval, cannot wake by the handoff minute, or
	// the VM has no remaining minutes to move. The fleet is untouched.
	CodeMigrationInfeasible = "migration_infeasible"
	// CodeConsolidationBusy: POST /v1/consolidate raced an in-flight
	// consolidation pass; at most one runs at a time. Retry after the
	// current pass finishes.
	CodeConsolidationBusy = "consolidation_busy"
	// CodeStaleEpoch: the request carried an X-Vmalloc-Epoch older than
	// the highest epoch the serving side has seen — the sender is routing
	// on a superseded topology. Recover by re-fetching GET /v1/topology
	// and re-routing; the request was not executed.
	CodeStaleEpoch = "stale_epoch"
	// CodeRebalancing: POST /v1/topology arrived while the gate is still
	// draining the previous topology change; one rebalance runs at a
	// time. Poll GET /v1/topology until rebalance.active is false, then
	// retry.
	CodeRebalancing = "rebalancing"
	// CodeInternal: an unclassified server-side failure.
	CodeInternal = "internal"
)

// ErrorEnvelope is the body of every non-2xx response: a machine-readable
// code, the human-readable message (kept under the historical "error"
// key, so pre-envelope clients that read only that field keep working),
// and the request id the failing request carried — the same id the
// server's flight recorder and structured log attribute the failure to.
type ErrorEnvelope struct {
	Code      string `json:"code,omitempty"`
	Message   string `json:"error"`
	RequestID string `json:"requestId,omitempty"`
}

// Error is a non-2xx response as a client-side error value: the HTTP
// status plus the decoded envelope. Both the loadgen client and the
// vmgate router surface upstream failures as *Error.
type Error struct {
	Status   int
	Envelope ErrorEnvelope
}

func (e *Error) Error() string {
	code := e.Envelope.Code
	if code == "" {
		code = "unknown"
	}
	return fmt.Sprintf("api: server returned %d (%s): %s", e.Status, code, e.Envelope.Message)
}

// DecodeError builds an *Error from a non-2xx response body. Bodies that
// do not parse as an envelope (proxies, panics, plain-text handlers)
// degrade gracefully: the trimmed body becomes the message.
func DecodeError(status int, body []byte) *Error {
	e := &Error{Status: status}
	if err := json.Unmarshal(body, &e.Envelope); err != nil || e.Envelope.Message == "" && e.Envelope.Code == "" {
		e.Envelope.Message = strings.TrimSpace(string(body))
	}
	return e
}
