package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"vmalloc/internal/model"
	"vmalloc/internal/workload"
)

func sample() []model.VM {
	return []model.VM{
		{ID: 1, Type: "standard-2", Demand: model.Resources{CPU: 2, Mem: 3.75}, Start: 1, End: 20},
		{ID: 2, Type: "cpu-intensive-1", Demand: model.Resources{CPU: 5, Mem: 1.7}, Start: 5, End: 14},
		{ID: 3, Type: "custom", Demand: model.Resources{CPU: 1, Mem: 1}, Start: 11, End: 30},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sample()) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, sample())
	}
}

func TestCSVRoundTripGenerated(t *testing.T) {
	spec := workload.Spec{NumVMs: 200, MeanInterArrival: 2, MeanLength: 30}
	vms, err := spec.VMs(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, vms); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vms) {
		t.Error("generated trace did not round trip")
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "a,b,c,d,e,f\n"},
		{"bad id", "id,type,cpu,mem,start,end\nx,t,1,1,1,2\n"},
		{"bad cpu", "id,type,cpu,mem,start,end\n1,t,x,1,1,2\n"},
		{"bad mem", "id,type,cpu,mem,start,end\n1,t,1,x,1,2\n"},
		{"bad start", "id,type,cpu,mem,start,end\n1,t,1,1,x,2\n"},
		{"bad end", "id,type,cpu,mem,start,end\n1,t,1,1,1,x\n"},
		{"invalid vm", "id,type,cpu,mem,start,end\n1,t,1,1,5,2\n"},
		{"wrong width", "id,type,cpu,mem,start,end\n1,t,1,1,1\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in)); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestAnalyze(t *testing.T) {
	st := Analyze(sample())
	if st.Count != 3 {
		t.Errorf("Count = %d", st.Count)
	}
	// Starts 1, 5, 11 → mean inter-arrival (11-1)/2 = 5.
	if st.MeanInterArrival != 5 {
		t.Errorf("MeanInterArrival = %g, want 5", st.MeanInterArrival)
	}
	// Durations 20, 10, 20 → mean 50/3.
	if want := 50.0 / 3; st.MeanLength != want {
		t.Errorf("MeanLength = %g, want %g", st.MeanLength, want)
	}
	if st.Horizon != 30 {
		t.Errorf("Horizon = %d", st.Horizon)
	}
	// All three overlap during [11,14].
	if st.PeakConcurrency != 3 {
		t.Errorf("PeakConcurrency = %d, want 3", st.PeakConcurrency)
	}
	if st.TypeMix["standard-2"] != 1 || st.TypeMix["custom"] != 1 {
		t.Errorf("TypeMix = %v", st.TypeMix)
	}
	if st.ClassMix["standard"] != 1 || st.ClassMix["cpu-intensive"] != 1 || st.ClassMix["other"] != 1 {
		t.Errorf("ClassMix = %v", st.ClassMix)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	st := Analyze(nil)
	if st.Count != 0 || st.PeakConcurrency != 0 {
		t.Errorf("empty Analyze = %+v", st)
	}
}

func TestFitSpecRecoversParameters(t *testing.T) {
	spec := workload.Spec{
		NumVMs: 3000, MeanInterArrival: 2.5, MeanLength: 40,
		Classes: []model.VMClass{model.ClassStandard, model.ClassCPUIntensive},
	}
	vms, err := spec.VMs(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	fit := Analyze(vms).FitSpec()
	if fit.NumVMs != 3000 {
		t.Errorf("NumVMs = %d", fit.NumVMs)
	}
	if fit.MeanInterArrival < 2.2 || fit.MeanInterArrival > 2.8 {
		t.Errorf("MeanInterArrival = %g, want ≈2.5", fit.MeanInterArrival)
	}
	if fit.MeanLength < 36 || fit.MeanLength > 44 {
		t.Errorf("MeanLength = %g, want ≈40", fit.MeanLength)
	}
	wantClasses := []model.VMClass{model.ClassCPUIntensive, model.ClassStandard}
	if !reflect.DeepEqual(fit.Classes, wantClasses) {
		t.Errorf("Classes = %v, want %v", fit.Classes, wantClasses)
	}
	// The fitted spec must itself be generatable.
	if _, err := fit.VMs(rand.New(rand.NewSource(3))); err != nil {
		t.Errorf("fitted spec unusable: %v", err)
	}
}

func TestFitSpecAllClasses(t *testing.T) {
	spec := workload.Spec{NumVMs: 2000, MeanInterArrival: 1, MeanLength: 20}
	vms, err := spec.VMs(rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	fit := Analyze(vms).FitSpec()
	if len(fit.Classes) != 0 {
		t.Errorf("all-class trace should fit to unrestricted spec, got %v", fit.Classes)
	}
}
