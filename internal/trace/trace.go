// Package trace imports and exports VM request traces and analyses them.
// A trace is the list of VM requests of an instance — the paper's
// synthetic workloads and real data-center request logs share the same
// shape (id, type, cpu, mem, start, end) — so traces can be captured from
// one source, summarised, and refitted into workload.Spec parameters to
// generate statistically similar synthetic instances.
//
// CSV format (header required):
//
//	id,type,cpu,mem,start,end
//	1,standard-2,2,3.75,4,61
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"vmalloc/internal/model"
	"vmalloc/internal/workload"
)

var csvHeader = []string{"id", "type", "cpu", "mem", "start", "end"}

// WriteCSV writes the VMs as a CSV trace.
func WriteCSV(w io.Writer, vms []model.VM) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, v := range vms {
		rec := []string{
			strconv.Itoa(v.ID),
			v.Type,
			strconv.FormatFloat(v.Demand.CPU, 'g', -1, 64),
			strconv.FormatFloat(v.Demand.Mem, 'g', -1, 64),
			strconv.Itoa(v.Start),
			strconv.Itoa(v.End),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV trace and validates every VM.
func ReadCSV(r io.Reader) ([]model.VM, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], want)
		}
	}
	var vms []model.VM
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		v, err := parseRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		vms = append(vms, v)
	}
	return vms, nil
}

func parseRecord(rec []string) (model.VM, error) {
	id, err := strconv.Atoi(rec[0])
	if err != nil {
		return model.VM{}, fmt.Errorf("id: %w", err)
	}
	cpu, err := strconv.ParseFloat(rec[2], 64)
	if err != nil {
		return model.VM{}, fmt.Errorf("cpu: %w", err)
	}
	mem, err := strconv.ParseFloat(rec[3], 64)
	if err != nil {
		return model.VM{}, fmt.Errorf("mem: %w", err)
	}
	start, err := strconv.Atoi(rec[4])
	if err != nil {
		return model.VM{}, fmt.Errorf("start: %w", err)
	}
	end, err := strconv.Atoi(rec[5])
	if err != nil {
		return model.VM{}, fmt.Errorf("end: %w", err)
	}
	return model.VM{
		ID:     id,
		Type:   rec[1],
		Demand: model.Resources{CPU: cpu, Mem: mem},
		Start:  start,
		End:    end,
	}, nil
}

// Stats summarises a trace.
type Stats struct {
	Count int `json:"count"`
	// MeanInterArrival is the mean gap between consecutive starts, in
	// minutes.
	MeanInterArrival float64 `json:"meanInterArrivalMinutes"`
	// MeanLength is the mean VM duration in minutes.
	MeanLength float64 `json:"meanLengthMinutes"`
	// Horizon is the last end time.
	Horizon int `json:"horizon"`
	// PeakConcurrency is the maximum number of simultaneously live VMs.
	PeakConcurrency int `json:"peakConcurrency"`
	// MeanCPU and MeanMem are the average demands.
	MeanCPU float64 `json:"meanCPU"`
	MeanMem float64 `json:"meanMem"`
	// TypeMix counts VMs per type name.
	TypeMix map[string]int `json:"typeMix"`
	// ClassMix counts VMs per catalog class (types not in the catalog
	// fall under "other").
	ClassMix map[string]int `json:"classMix"`
}

// Analyze computes trace statistics.
func Analyze(vms []model.VM) Stats {
	st := Stats{
		Count:    len(vms),
		TypeMix:  make(map[string]int),
		ClassMix: make(map[string]int),
	}
	if len(vms) == 0 {
		return st
	}
	starts := make([]int, 0, len(vms))
	events := make(map[int]int)
	var totalLen, totalCPU, totalMem float64
	for _, v := range vms {
		starts = append(starts, v.Start)
		totalLen += float64(v.Duration())
		totalCPU += v.Demand.CPU
		totalMem += v.Demand.Mem
		if v.End > st.Horizon {
			st.Horizon = v.End
		}
		st.TypeMix[v.Type]++
		if vt, err := model.VMTypeByName(v.Type); err == nil {
			st.ClassMix[string(vt.Class)]++
		} else {
			st.ClassMix["other"]++
		}
		events[v.Start]++
		events[v.End+1]--
	}
	sort.Ints(starts)
	if len(starts) > 1 {
		st.MeanInterArrival = float64(starts[len(starts)-1]-starts[0]) / float64(len(starts)-1)
	}
	st.MeanLength = totalLen / float64(len(vms))
	st.MeanCPU = totalCPU / float64(len(vms))
	st.MeanMem = totalMem / float64(len(vms))

	times := make([]int, 0, len(events))
	for t := range events {
		times = append(times, t)
	}
	sort.Ints(times)
	cur := 0
	for _, t := range times {
		cur += events[t]
		if cur > st.PeakConcurrency {
			st.PeakConcurrency = cur
		}
	}
	return st
}

// FitSpec estimates workload.Spec parameters that would generate a
// statistically similar trace: the empirical mean inter-arrival and mean
// length, and the catalog classes present in the trace (classes whose
// share is below 1% are dropped as noise).
func (st Stats) FitSpec() workload.Spec {
	spec := workload.Spec{
		NumVMs:           st.Count,
		MeanInterArrival: st.MeanInterArrival,
		MeanLength:       st.MeanLength,
	}
	if spec.MeanInterArrival <= 0 {
		spec.MeanInterArrival = 1
	}
	if spec.MeanLength <= 0 {
		spec.MeanLength = 1
	}
	classes := make([]string, 0, len(st.ClassMix))
	for c := range st.ClassMix {
		if c != "other" && st.ClassMix[c]*100 >= st.Count {
			classes = append(classes, c)
		}
	}
	sort.Strings(classes)
	if len(classes) < 3 { // not all classes present: restrict
		for _, c := range classes {
			spec.Classes = append(spec.Classes, model.VMClass(c))
		}
	}
	return spec
}
