package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV ensures the parser never panics on arbitrary input and that
// whatever it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("id,type,cpu,mem,start,end\n1,standard-1,1,1.7,1,10\n")
	f.Add("id,type,cpu,mem,start,end\n")
	f.Add("garbage")
	f.Add("id,type,cpu,mem,start,end\n1,t,NaN,1,1,2\n")
	f.Add("id,type,cpu,mem,start,end\n1,\"a,b\",1,1,1,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		vms, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, v := range vms {
			if v.Validate() != nil {
				t.Fatalf("parser accepted invalid vm %+v", v)
			}
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, vms); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if len(again) != len(vms) {
			t.Fatalf("round trip changed count: %d vs %d", len(again), len(vms))
		}
	})
}
