package loadgen

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vmalloc/internal/cluster"
	"vmalloc/internal/clusterhttp"
)

// copyDir copies the flat journal directory (journal.jsonl, and
// snapshot.json when present) — a poor man's crash image: the bytes a
// new process would find if this one died without closing.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSoakJournalReplay is the in-process soak harness: a real journaled
// cluster behind the real HTTP handler, hammered by the load runner with
// chunked concurrent admissions, concurrent releases and interleaved
// clock advances (run it under -race). Afterwards the journal directory
// is copied mid-flight — before Close writes its snapshot — and reopened:
// the replayed state must match the live state byte for byte. Then the
// clean shutdown path (snapshot on Close) is reopened and must match too.
func TestSoakJournalReplay(t *testing.T) {
	spec := ScheduleSpec{
		Profile:         DiurnalProfile{MeanInterArrival: 0.3, PeakToTrough: 3, Period: 360},
		NumVMs:          1300,
		MeanLength:      30,
		ReleaseFraction: 0.5,
		Seed:            20260805,
	}
	if testing.Short() {
		spec.NumVMs = 300
	}
	sched, err := BuildSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !testing.Short() && sched.Ops() < 2000 {
		t.Fatalf("soak schedule has %d ops, want >= 2000", sched.Ops())
	}

	dir := t.TempDir()
	cfg := cluster.Config{
		Servers:       testServers(24),
		IdleTimeout:   5,
		BatchWindow:   200 * time.Microsecond,
		Dir:           dir,
		SnapshotEvery: -1,   // snapshot only on Close: the copy below sees journal-only state
		DisableFsync:  true, // soak speed; logical replay guarantees are what is under test
	}
	cl, err := cluster.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv := httptest.NewServer(clusterhttp.NewHandler(cl))
	defer srv.Close()

	client := NewClient(srv.URL)
	r := &Runner{
		Client:   client,
		Schedule: sched,
		Opts:     Options{Workers: 16, Chunk: 8},
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("soak run reported %d errors", rep.Errors)
	}
	if rep.Sent != spec.NumVMs {
		t.Fatalf("sent %d admissions, want %d", rep.Sent, spec.NumVMs)
	}
	t.Logf("soak: %d ops, %d accepted, %d rejected, %d released in %s",
		sched.Ops(), rep.Accepted, rep.Rejected, rep.Releases, rep.Wall.Round(time.Millisecond))

	wantJSON, err := cl.StateJSON()
	if err != nil {
		t.Fatal(err)
	}

	// Crash image: journal only, no shutdown snapshot.
	crashDir := t.TempDir()
	copyDir(t, dir, crashDir)
	crashCfg := cfg
	crashCfg.Dir = crashDir
	replayed, err := cluster.Open(crashCfg)
	if err != nil {
		t.Fatalf("reopening journal-only crash image: %v", err)
	}
	gotJSON, err := replayed.StateJSON()
	if cerr := replayed.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("journal replay diverged from live state\nlive:     %s\nreplayed: %s",
			trimForLog(wantJSON), trimForLog(gotJSON))
	}

	// Clean shutdown: Close compacts into snapshot.json; reopening must
	// restore the same bytes.
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := cluster.Open(cfg)
	if err != nil {
		t.Fatalf("reopening after clean shutdown: %v", err)
	}
	gotJSON, err = reopened.StateJSON()
	if cerr := reopened.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatal("snapshot restore diverged from live state")
	}
}

func trimForLog(b []byte) string {
	const max = 600
	if len(b) <= max {
		return string(b)
	}
	return string(b[:max]) + "…"
}
