package loadgen

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vmalloc/internal/cluster"
	"vmalloc/internal/clusterhttp"
	"vmalloc/internal/obs"
)

// copyDir copies the flat journal directory (journal.jsonl, and
// snapshot.json when present) — a poor man's crash image: the bytes a
// new process would find if this one died without closing.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSoakJournalReplay is the in-process soak harness: a real journaled
// cluster behind the real HTTP handler, hammered by the load runner with
// chunked concurrent admissions, concurrent releases and interleaved
// clock advances (run it under -race). Afterwards the journal directory
// is copied mid-flight — before Close writes its snapshot — and reopened:
// the replayed state must match the live state byte for byte. Then the
// clean shutdown path (snapshot on Close) is reopened and must match too.
//
// The run is traced end to end: a flight recorder sized to hold every
// decision is wired through cluster and handler, the client records each
// request id it issues, and afterwards the recorder must attribute every
// decision to a client-issued id — with op counts matching the report and
// stage timings present. Recorder reads happen concurrently with the load
// (verified by -race).
func TestSoakJournalReplay(t *testing.T) {
	spec := ScheduleSpec{
		Profile:         DiurnalProfile{MeanInterArrival: 0.3, PeakToTrough: 3, Period: 360},
		NumVMs:          1300,
		MeanLength:      30,
		ReleaseFraction: 0.5,
		Seed:            20260805,
	}
	if testing.Short() {
		spec.NumVMs = 300
	}
	sched, err := BuildSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !testing.Short() && sched.Ops() < 2000 {
		t.Fatalf("soak schedule has %d ops, want >= 2000", sched.Ops())
	}

	dir := t.TempDir()
	cfg := cluster.Config{
		Servers:       testServers(24),
		IdleTimeout:   5,
		BatchWindow:   200 * time.Microsecond,
		Dir:           dir,
		SnapshotEvery: -1,   // snapshot only on Close: the copy below sees journal-only state
		DisableFsync:  true, // soak speed; logical replay guarantees are what is under test
	}
	// Big enough that no decision of this run is ever evicted, so the
	// request-id cross-check below is exhaustive.
	recorder := obs.NewFlightRecorder(1 << 14)
	cfg.Recorder = recorder
	cl, err := cluster.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv := httptest.NewServer(clusterhttp.New(cl, clusterhttp.Config{Recorder: recorder}))
	defer srv.Close()

	client := NewClient(srv.URL)
	client.RecordRequestIDs = true
	r := &Runner{
		Client:   client,
		Schedule: sched,
		// Consolidate every 60 fleet minutes: the diurnal trough leaves
		// under-utilised servers for the pay-for-itself drains, so the
		// journal gets real migrate records to replay below.
		Opts: Options{Workers: 16, Chunk: 8, ConsolidateEvery: 60},
	}

	// Read the recorder concurrently with the load — both in-process and
	// over HTTP — so -race covers the reader/writer paths.
	readCtx, stopReads := context.WithCancel(context.Background())
	readsDone := make(chan struct{})
	go func() {
		defer close(readsDone)
		reader := NewClient(srv.URL)
		for readCtx.Err() == nil {
			recorder.Decisions(obs.Filter{Limit: 16})
			if _, err := reader.DebugDecisions(readCtx, "limit=16"); err != nil && readCtx.Err() == nil {
				t.Errorf("concurrent decisions read: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	rep, err := r.Run(context.Background())
	stopReads()
	<-readsDone
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("soak run reported %d errors", rep.Errors)
	}
	if rep.Sent != spec.NumVMs {
		t.Fatalf("sent %d admissions, want %d", rep.Sent, spec.NumVMs)
	}
	t.Logf("soak: %d ops, %d accepted, %d rejected, %d released in %s",
		sched.Ops(), rep.Accepted, rep.Rejected, rep.Releases, rep.Wall.Round(time.Millisecond))
	if rep.Consolidations == 0 {
		t.Fatal("soak ran no consolidation passes")
	}
	if !testing.Short() && rep.Migrations == 0 {
		t.Fatal("full soak executed no migrations: the replay below would not cover migrate records")
	}
	t.Logf("consolidation: %d passes, %d migrations, %.2f Wmin saved",
		rep.Consolidations, rep.Migrations, rep.MigrationSaved)

	verifyDecisionTrace(t, client, recorder, rep)

	wantJSON, err := cl.StateJSON()
	if err != nil {
		t.Fatal(err)
	}

	// Crash image: journal only, no shutdown snapshot.
	crashDir := t.TempDir()
	copyDir(t, dir, crashDir)
	crashCfg := cfg
	crashCfg.Dir = crashDir
	replayed, err := cluster.Open(crashCfg)
	if err != nil {
		t.Fatalf("reopening journal-only crash image: %v", err)
	}
	gotJSON, err := replayed.StateJSON()
	if cerr := replayed.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("journal replay diverged from live state\nlive:     %s\nreplayed: %s",
			trimForLog(wantJSON), trimForLog(gotJSON))
	}

	// Clean shutdown: Close compacts into snapshot.json; reopening must
	// restore the same bytes.
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := cluster.Open(cfg)
	if err != nil {
		t.Fatalf("reopening after clean shutdown: %v", err)
	}
	gotJSON, err = reopened.StateJSON()
	if cerr := reopened.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatal("snapshot restore diverged from live state")
	}
}

// verifyDecisionTrace cross-checks the flight recorder against the run:
// every decision must carry a request id the client actually issued, the
// op counts must reconcile with the report, and admit decisions must have
// batch ids and stage timings.
func verifyDecisionTrace(t *testing.T, client *Client, rec *obs.FlightRecorder, rep *Report) {
	t.Helper()
	if rec.Seq() > int64(rec.Len()) {
		t.Fatalf("recorder evicted decisions (%d recorded, %d held): size it up", rec.Seq(), rec.Len())
	}
	ds := rec.Decisions(obs.Filter{})
	if len(ds) == 0 {
		t.Fatal("flight recorder is empty after the soak")
	}
	issued := make(map[string]bool, len(client.IssuedRequestIDs()))
	for _, id := range client.IssuedRequestIDs() {
		issued[id] = true
	}
	var admits, rejects, releases, migrates int
	for _, d := range ds {
		if d.RequestID == "" || !issued[d.RequestID] {
			t.Fatalf("decision carries request id %q the client never issued: %+v", d.RequestID, d)
		}
		switch d.Op {
		case obs.OpAdmit:
			admits++
			if d.Batch == 0 {
				t.Fatalf("admit decision without a batch id: %+v", d)
			}
			if d.Stages.Scan <= 0 || d.Stages.Commit <= 0 {
				t.Fatalf("admit decision without stage timings: %+v", d)
			}
			if d.Server == 0 {
				t.Fatalf("admit decision without a server: %+v", d)
			}
		case obs.OpReject:
			rejects++
			if d.Reason == "" {
				t.Fatalf("reject decision without a reason: %+v", d)
			}
		case obs.OpRelease:
			if d.Reason == "" {
				releases++ // successful release; failed ones carry a reason
			}
		case obs.OpMigrate:
			migrates++
			if d.Server == 0 || d.From == 0 {
				t.Fatalf("migrate decision without endpoints: %+v", d)
			}
			if d.Stages.Journal <= 0 {
				t.Fatalf("migrate decision without a journal stage: %+v", d)
			}
		default:
			t.Fatalf("unknown op in decision %+v", d)
		}
	}
	if admits != rep.Accepted || rejects != rep.Rejected || releases != rep.Releases {
		t.Fatalf("recorder saw %d/%d/%d admit/reject/release, report says %d/%d/%d",
			admits, rejects, releases, rep.Accepted, rep.Rejected, rep.Releases)
	}
	if migrates != rep.Migrations {
		t.Fatalf("recorder saw %d migrate decisions, report says %d", migrates, rep.Migrations)
	}
	t.Logf("trace: %d decisions, all matched to %d issued request ids", len(ds), len(issued))
}

func trimForLog(b []byte) string {
	const max = 600
	if len(b) <= max {
		return string(b)
	}
	return string(b[:max]) + "…"
}
