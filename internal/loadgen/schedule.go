package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"vmalloc/internal/api"
	"vmalloc/internal/model"
)

// ScheduleSpec describes one deterministic load run.
type ScheduleSpec struct {
	// Profile shapes the arrival rate; required.
	Profile Profile
	// NumVMs is how many admission requests to generate.
	NumVMs int
	// MeanLength is the exponential mean VM length in minutes (paper
	// §IV-B).
	MeanLength float64
	// ReleaseFraction of admitted VMs are released early, at a seeded
	// minute strictly inside their lifetime. 0 disables releases.
	ReleaseFraction float64
	// Classes restricts the Table I VM-type catalog; empty means all
	// classes.
	Classes []model.VMClass
	// Seed drives every random draw; a (spec, seed) pair fully
	// determines the schedule.
	Seed int64
}

// Validate reports whether the spec is well formed.
func (s ScheduleSpec) Validate() error {
	if s.Profile == nil {
		return fmt.Errorf("loadgen: spec has no profile")
	}
	if err := s.Profile.Validate(); err != nil {
		return err
	}
	switch {
	case s.NumVMs < 1:
		return fmt.Errorf("loadgen: NumVMs %d, want >= 1", s.NumVMs)
	case !(s.MeanLength > 0):
		return fmt.Errorf("loadgen: MeanLength %g, want > 0", s.MeanLength)
	case s.ReleaseFraction < 0 || s.ReleaseFraction > 1:
		return fmt.Errorf("loadgen: ReleaseFraction %g, want in [0, 1]", s.ReleaseFraction)
	}
	return nil
}

// Step is every operation the runner issues at one fleet minute: advance
// the clock to Minute, send the admissions (each with Start = Minute and
// an explicit VM ID, so the request stream is an idempotent, replayable
// log), then issue the releases.
type Step struct {
	Minute   int
	Admits   []api.AdmitRequest
	Releases []int // VM IDs, ascending
}

// Schedule is a deterministic operation timeline for one load run.
type Schedule struct {
	Steps []Step
	// NumVMs is the number of admission requests across all steps.
	NumVMs int
	// MaxID is the largest VM ID any admission carries. Generated
	// schedules use dense IDs (MaxID == NumVMs); trace-derived ones can
	// be sparse, with MaxID well above NumVMs.
	MaxID int
	// NumReleases is the number of scheduled early releases.
	NumReleases int
	// Horizon is the last minute any generated VM would run to — the
	// final clock advance that drains all departures.
	Horizon int
}

// Ops returns the total operation count: admissions, releases, and one
// clock advance per step plus the final drain tick.
func (s *Schedule) Ops() int {
	return s.NumVMs + s.NumReleases + len(s.Steps) + 1
}

// BuildSchedule generates the deterministic operation timeline: VM
// arrivals are drawn from the profile's inhomogeneous Poisson process by
// thinning at the peak rate (exactly the workload package's §IV-B
// construction), lengths are exponential, demands come from the Table I
// catalog, and a seeded ReleaseFraction of VMs get an early release at a
// uniform minute strictly inside their lifetime.
func BuildSchedule(spec ScheduleSpec) (*Schedule, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	types := model.VMTypesByClass(spec.Classes...)
	if len(types) == 0 {
		return nil, fmt.Errorf("loadgen: classes %v match no VM types", spec.Classes)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	peak := spec.Profile.PeakRate()

	steps := make(map[int]*Step)
	stepAt := func(minute int) *Step {
		st := steps[minute]
		if st == nil {
			st = &Step{Minute: minute}
			steps[minute] = st
		}
		return st
	}

	sched := &Schedule{NumVMs: spec.NumVMs, MaxID: spec.NumVMs}
	now := 0.0
	for id := 1; id <= spec.NumVMs; {
		now += rng.ExpFloat64() / peak
		if rng.Float64()*peak > spec.Profile.Rate(now) {
			continue // thinned
		}
		start := int(math.Round(now))
		if start < 1 {
			start = 1
		}
		length := int(math.Round(rng.ExpFloat64() * spec.MeanLength))
		if length < 1 {
			length = 1
		}
		vt := types[rng.Intn(len(types))]
		stepAt(start).Admits = append(stepAt(start).Admits, api.AdmitRequest{
			ID:              id,
			Type:            vt.Name,
			Demand:          vt.Resources(),
			Start:           start,
			DurationMinutes: length,
		})
		if end := start + length - 1; end > sched.Horizon {
			sched.Horizon = end
		}
		// Early release: a seeded coin per VM, at a uniform minute in
		// (start, end] — so the VM is resident when the release lands,
		// whatever wake-up delay its admission absorbed.
		if length >= 2 && rng.Float64() < spec.ReleaseFraction {
			rel := start + 1 + rng.Intn(length-1)
			stepAt(rel).Releases = append(stepAt(rel).Releases, id)
			sched.NumReleases++
		}
		id++
	}

	minutes := make([]int, 0, len(steps))
	for m := range steps {
		minutes = append(minutes, m)
	}
	sort.Ints(minutes)
	sched.Steps = make([]Step, len(minutes))
	for i, m := range minutes {
		st := steps[m]
		sort.Ints(st.Releases)
		sched.Steps[i] = *st
	}
	return sched, nil
}
