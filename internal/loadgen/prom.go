package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Metrics is a flat view of one Prometheus text-exposition scrape:
// series name (including its label set, verbatim) → sample value.
type Metrics map[string]float64

// ParseMetrics reads the Prometheus text exposition format the cluster
// emits: `name value` or `name{labels} value` lines, comments skipped.
func ParseMetrics(r io.Reader) (Metrics, error) {
	m := make(Metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("loadgen: metrics line %q has no value", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: metrics line %q: %w", line, err)
		}
		m[strings.TrimSpace(line[:sp])] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// Delta returns m − before for every series present in m (a series
// absent from before counts from zero). Gauges subtract like counters;
// callers pick the series they care about.
func (m Metrics) Delta(before Metrics) Metrics {
	d := make(Metrics, len(m))
	for k, v := range m {
		d[k] = v - before[k]
	}
	return d
}

// Keys returns the series names in sorted order, for deterministic
// report output.
func (m Metrics) Keys() []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
