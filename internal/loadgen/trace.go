package loadgen

import (
	"fmt"
	"sort"

	"vmalloc/internal/api"
	"vmalloc/internal/model"
)

// TraceSchedule maps a VM trace (the internal/trace CSV shape: validated
// model.VMs with explicit IDs and [Start, End] lifetimes) onto the
// runner's operation timeline, so real request logs replay through the
// service exactly like the synthetic §IV-B schedules: one admission per
// VM at its start minute, no early releases (a trace's End is the
// natural departure the server's clock processes), the horizon at the
// last end. IDs must be unique and >= 1 — they are the idempotency and
// routing keys — but may be sparse; the runner sizes its tables by
// Schedule.MaxID.
func TraceSchedule(vms []model.VM) (*Schedule, error) {
	if len(vms) == 0 {
		return nil, fmt.Errorf("loadgen: empty trace")
	}
	seen := make(map[int]bool, len(vms))
	steps := make(map[int]*Step)
	stepAt := func(minute int) *Step {
		st := steps[minute]
		if st == nil {
			st = &Step{Minute: minute}
			steps[minute] = st
		}
		return st
	}
	sched := &Schedule{NumVMs: len(vms)}
	for i, v := range vms {
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("loadgen: trace vm %d: %w", i, err)
		}
		if v.ID < 1 {
			return nil, fmt.Errorf("loadgen: trace vm %d has id %d, want >= 1 (the replay key)", i, v.ID)
		}
		if seen[v.ID] {
			return nil, fmt.Errorf("loadgen: trace vm id %d appears twice", v.ID)
		}
		seen[v.ID] = true
		stepAt(v.Start).Admits = append(stepAt(v.Start).Admits, api.AdmitRequest{
			ID:              v.ID,
			Type:            v.Type,
			Demand:          v.Demand,
			Start:           v.Start,
			DurationMinutes: v.Duration(),
		})
		if v.ID > sched.MaxID {
			sched.MaxID = v.ID
		}
		if v.End > sched.Horizon {
			sched.Horizon = v.End
		}
	}
	minutes := make([]int, 0, len(steps))
	for m := range steps {
		minutes = append(minutes, m)
	}
	sort.Ints(minutes)
	sched.Steps = make([]Step, len(minutes))
	for i, m := range minutes {
		st := steps[m]
		// Trace file order within a minute is arbitrary; ID order makes
		// the replayed request stream (and the outcome digest) a pure
		// function of the trace's contents.
		sort.Slice(st.Admits, func(a, b int) bool { return st.Admits[a].ID < st.Admits[b].ID })
		sched.Steps[i] = *st
	}
	return sched, nil
}
