// Package loadgen is the load-generation harness for the vmserve
// allocation daemon: deterministic open-loop arrival schedules (Poisson
// and diurnal sinusoidal profiles, seeded from the paper's §IV arrival
// model), a typed retrying HTTP client for the cluster API, a
// worker-pool runner that replays a schedule against a live server, and
// a reporter that folds outcomes, latency quantiles and /metrics deltas
// into one result.
//
// Everything upstream of the network is deterministic: a (ScheduleSpec,
// seed) pair fully determines the operation sequence, and the runner's
// default minute-step execution keeps the admission/rejection outcome
// sequence identical across runs against fresh servers — which turns the
// generator into a repeatable correctness instrument (see the soak
// tests), not just a throughput toy.
package loadgen

import (
	"fmt"
	"math"
)

// Profile is a deterministic arrival-rate curve: Rate(t) is the expected
// number of VM arrivals per minute at fleet minute t. Schedules draw
// arrival times from an inhomogeneous Poisson process with this rate by
// thinning at PeakRate.
type Profile interface {
	// Name identifies the profile in reports.
	Name() string
	// Rate returns the instantaneous arrival rate (VMs/minute) at t.
	Rate(t float64) float64
	// PeakRate bounds Rate over all t — the thinning envelope.
	PeakRate() float64
	// Validate reports whether the profile is well formed.
	Validate() error
}

// PoissonProfile is the paper's §IV-B flat arrival model: a homogeneous
// Poisson process with mean inter-arrival time MeanInterArrival minutes.
type PoissonProfile struct {
	// MeanInterArrival is the mean inter-arrival gap in minutes; the
	// paper's experiments sweep it to move the fleet through its load
	// range.
	MeanInterArrival float64
}

// Name implements Profile.
func (p PoissonProfile) Name() string { return "poisson" }

// Rate implements Profile.
func (p PoissonProfile) Rate(float64) float64 { return 1 / p.MeanInterArrival }

// PeakRate implements Profile.
func (p PoissonProfile) PeakRate() float64 { return 1 / p.MeanInterArrival }

// Validate implements Profile.
func (p PoissonProfile) Validate() error {
	if !(p.MeanInterArrival > 0) {
		return fmt.Errorf("loadgen: MeanInterArrival %g, want > 0", p.MeanInterArrival)
	}
	return nil
}

// DiurnalProfile sweeps the Poisson rate through a day/night sinusoid —
// the diurnal-like range the paper's §IV experiments cover by varying the
// mean inter-arrival time, compressed into a single run:
//
//	λ(t) = λ̄ · (1 + a·sin(2πt/Period)),  a = (PeakToTrough−1)/(PeakToTrough+1)
//
// matching workload.DiurnalSpec, so the daily average rate equals the
// flat profile with the same MeanInterArrival while the instantaneous
// rate swings between λ̄(1−a) and λ̄(1+a).
type DiurnalProfile struct {
	// MeanInterArrival is the day-average inter-arrival time in minutes.
	MeanInterArrival float64
	// PeakToTrough is the peak:trough arrival-rate ratio; 1 degenerates
	// to the flat Poisson profile.
	PeakToTrough float64
	// Period is the cycle length in fleet minutes (1440 = one day).
	Period float64
}

// Name implements Profile.
func (p DiurnalProfile) Name() string { return "diurnal" }

// amplitude returns a ∈ [0, 1).
func (p DiurnalProfile) amplitude() float64 {
	return (p.PeakToTrough - 1) / (p.PeakToTrough + 1)
}

// Rate implements Profile.
func (p DiurnalProfile) Rate(t float64) float64 {
	return (1 / p.MeanInterArrival) * (1 + p.amplitude()*math.Sin(2*math.Pi*t/p.Period))
}

// PeakRate implements Profile.
func (p DiurnalProfile) PeakRate() float64 {
	return (1 / p.MeanInterArrival) * (1 + p.amplitude())
}

// Validate implements Profile.
func (p DiurnalProfile) Validate() error {
	switch {
	case !(p.MeanInterArrival > 0):
		return fmt.Errorf("loadgen: MeanInterArrival %g, want > 0", p.MeanInterArrival)
	case p.PeakToTrough < 1:
		return fmt.Errorf("loadgen: PeakToTrough %g, want >= 1", p.PeakToTrough)
	case !(p.Period > 0):
		return fmt.Errorf("loadgen: Period %g, want > 0", p.Period)
	}
	return nil
}
