package loadgen

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vmalloc/internal/api"
	"vmalloc/internal/cluster"
	"vmalloc/internal/clusterhttp"
	"vmalloc/internal/model"
)

func testServers(n int) []model.Server {
	out := make([]model.Server, n)
	for i := range out {
		out[i] = model.Server{
			ID:             i + 1,
			Capacity:       model.Resources{CPU: 10, Mem: 16},
			PIdle:          100,
			PPeak:          200,
			TransitionTime: 1,
		}
	}
	return out
}

func TestPoissonProfile(t *testing.T) {
	p := PoissonProfile{MeanInterArrival: 2}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Rate(0); got != 0.5 {
		t.Fatalf("Rate(0) = %g, want 0.5", got)
	}
	if p.Rate(123.4) != p.Rate(0) || p.PeakRate() != p.Rate(0) {
		t.Fatal("poisson rate should be constant and equal to its peak")
	}
	if err := (PoissonProfile{}).Validate(); err == nil {
		t.Fatal("zero MeanInterArrival should not validate")
	}
}

func TestDiurnalProfile(t *testing.T) {
	p := DiurnalProfile{MeanInterArrival: 2, PeakToTrough: 3, Period: 1440}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	peak := p.Rate(p.Period / 4)       // sin = +1
	trough := p.Rate(3 * p.Period / 4) // sin = -1
	if ratio := peak / trough; math.Abs(ratio-3) > 1e-9 {
		t.Fatalf("peak/trough ratio = %g, want 3", ratio)
	}
	if math.Abs(p.PeakRate()-peak) > 1e-12 {
		t.Fatalf("PeakRate() = %g, want rate at peak %g", p.PeakRate(), peak)
	}
	// The mean over a full period is the homogeneous rate.
	const n = 10000
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.Rate(p.Period * float64(i) / n)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 1e-3 {
		t.Fatalf("mean rate over a period = %g, want 0.5", mean)
	}
	if err := (DiurnalProfile{MeanInterArrival: 2, PeakToTrough: 0.5, Period: 10}).Validate(); err == nil {
		t.Fatal("PeakToTrough < 1 should not validate")
	}
}

func testSpec(seed int64) ScheduleSpec {
	return ScheduleSpec{
		Profile:         DiurnalProfile{MeanInterArrival: 1.5, PeakToTrough: 4, Period: 240},
		NumVMs:          200,
		MeanLength:      40,
		ReleaseFraction: 0.3,
		Seed:            seed,
	}
}

func TestBuildScheduleDeterministic(t *testing.T) {
	a, err := BuildSchedule(testSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchedule(testSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (spec, seed) should produce identical schedules")
	}
	c, err := BuildSchedule(testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should produce different schedules")
	}
}

func TestBuildScheduleInvariants(t *testing.T) {
	spec := testSpec(42)
	sched, err := BuildSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]api.AdmitRequest)
	releases := 0
	maxEnd := 0
	lastMinute := 0
	for _, st := range sched.Steps {
		if st.Minute <= lastMinute {
			t.Fatalf("steps not strictly increasing: %d after %d", st.Minute, lastMinute)
		}
		lastMinute = st.Minute
		for _, req := range st.Admits {
			if _, dup := seen[req.ID]; dup {
				t.Fatalf("duplicate vm id %d", req.ID)
			}
			seen[req.ID] = req
			if req.Start != st.Minute || req.Start < 1 {
				t.Fatalf("vm %d start %d in step minute %d", req.ID, req.Start, st.Minute)
			}
			if req.DurationMinutes < 1 {
				t.Fatalf("vm %d duration %d", req.ID, req.DurationMinutes)
			}
			if end := req.Start + req.DurationMinutes - 1; end > maxEnd {
				maxEnd = end
			}
		}
		for _, id := range st.Releases {
			req, ok := seen[id]
			if !ok {
				t.Fatalf("release of vm %d scheduled before (or without) its admission", id)
			}
			end := req.Start + req.DurationMinutes - 1
			if st.Minute <= req.Start || st.Minute > end {
				t.Fatalf("release of vm %d at %d outside (%d, %d]", id, st.Minute, req.Start, end)
			}
			releases++
		}
	}
	if len(seen) != spec.NumVMs {
		t.Fatalf("generated %d VMs, want %d", len(seen), spec.NumVMs)
	}
	for id := 1; id <= spec.NumVMs; id++ {
		if _, ok := seen[id]; !ok {
			t.Fatalf("vm id %d missing: ids must cover 1..N", id)
		}
	}
	if releases != sched.NumReleases {
		t.Fatalf("NumReleases = %d, counted %d", sched.NumReleases, releases)
	}
	if sched.Horizon != maxEnd {
		t.Fatalf("Horizon = %d, max end %d", sched.Horizon, maxEnd)
	}
	if releases == 0 {
		t.Fatal("spec with ReleaseFraction 0.3 over 200 VMs should schedule releases")
	}
	if want := spec.NumVMs + releases + len(sched.Steps) + 1; sched.Ops() != want {
		t.Fatalf("Ops() = %d, want %d", sched.Ops(), want)
	}
}

func TestParseMetrics(t *testing.T) {
	const text = `# HELP vmalloc_cluster_admissions_total Total admissions.
# TYPE vmalloc_cluster_admissions_total counter
vmalloc_cluster_admissions_total 41
vmalloc_cluster_energy_watt_minutes 1234.5
vmalloc_server_state{server="1"} 2

`
	m, err := ParseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("parsed %d series, want 3: %v", len(m), m)
	}
	if m["vmalloc_cluster_admissions_total"] != 41 {
		t.Fatalf("admissions = %g", m["vmalloc_cluster_admissions_total"])
	}
	if m[`vmalloc_server_state{server="1"}`] != 2 {
		t.Fatalf("labelled series lost: %v", m)
	}
	before := Metrics{"vmalloc_cluster_admissions_total": 40}
	d := m.Delta(before)
	if d["vmalloc_cluster_admissions_total"] != 1 || d["vmalloc_cluster_energy_watt_minutes"] != 1234.5 {
		t.Fatalf("delta = %v", d)
	}
	if _, err := ParseMetrics(strings.NewReader("garbage-without-value\n")); err == nil {
		t.Fatal("malformed line should error")
	}
}

// TestClientRetryIdempotency scripts a flaky server: the first admission
// attempt dies with a 500, the retry answers "already resident" — the
// client must fold that into an accepted outcome. Same for a release
// whose retry sees 404.
func TestClientRetryIdempotency(t *testing.T) {
	var admitCalls, releaseCalls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/vms":
			if admitCalls.Add(1) == 1 {
				http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`[{"id":7,"accepted":false,"reason":"vm 7 already resident"}]`))
		case r.Method == http.MethodDelete && strings.HasPrefix(r.URL.Path, "/v1/vms/"):
			if releaseCalls.Add(1) == 1 {
				http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
				return
			}
			http.Error(w, `{"error":"no such vm"}`, http.StatusNotFound)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Backoff = time.Millisecond
	adms, err := c.Admit(context.Background(), []api.AdmitRequest{{ID: 7, Demand: model.Resources{CPU: 1, Mem: 1}, DurationMinutes: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(adms) != 1 || !adms[0].Accepted {
		t.Fatalf("retried already-resident rejection not folded to accepted: %+v", adms)
	}
	if got := c.Retried(); got != 1 {
		t.Fatalf("Retried() = %d, want 1", got)
	}

	released, err := c.Release(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if !released {
		t.Fatal("404 on a retried release should count as released")
	}

	// A first-attempt 404 is a genuine miss, not an idempotent success.
	released, err = c.Release(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if released {
		t.Fatal("first-attempt 404 should report released=false")
	}
}

func TestClientRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Backoff = time.Millisecond
	c.Retries = 2
	if _, err := c.AdvanceClock(context.Background(), 5); err == nil {
		t.Fatal("want error after retries exhausted")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

// newTestServer boots a real volatile cluster behind the real HTTP
// handler — the full vmserve surface, in process.
func newTestServer(t *testing.T, n int) (*httptest.Server, *cluster.Cluster) {
	t.Helper()
	c, err := cluster.Open(cluster.Config{Servers: testServers(n), IdleTimeout: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	srv := httptest.NewServer(clusterhttp.NewHandler(c))
	t.Cleanup(srv.Close)
	return srv, c
}

// TestRunnerEndToEnd replays a seeded schedule twice against fresh
// clusters and demands identical outcome digests — the acceptance
// criterion that the same -seed yields the same admission/rejection
// sequence — plus agreement between the report and the server state.
func TestRunnerEndToEnd(t *testing.T) {
	spec := ScheduleSpec{
		Profile:         PoissonProfile{MeanInterArrival: 0.4},
		NumVMs:          120,
		MeanLength:      25,
		ReleaseFraction: 0.25,
		Seed:            99,
	}
	sched, err := BuildSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Report {
		srv, cl := newTestServer(t, 3) // small fleet: force rejections
		client := NewClient(srv.URL)
		r := &Runner{Client: client, Schedule: sched, Opts: Options{Workers: 4}}
		rep, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Errors != 0 {
			t.Fatalf("run reported %d errors", rep.Errors)
		}
		if rep.Sent != spec.NumVMs || rep.Accepted+rep.Rejected != rep.Sent {
			t.Fatalf("sent %d accepted %d rejected %d", rep.Sent, rep.Accepted, rep.Rejected)
		}
		if rep.Rejected == 0 {
			t.Fatal("3 small servers under this load should reject some VMs")
		}
		if rep.Releases+rep.ReleaseMisses+rep.ReleaseSkips != sched.NumReleases {
			t.Fatalf("release accounting: %d+%d+%d != %d",
				rep.Releases, rep.ReleaseMisses, rep.ReleaseSkips, sched.NumReleases)
		}
		if rep.ClockTicks != len(sched.Steps)+1 {
			t.Fatalf("clock ticks %d, want %d", rep.ClockTicks, len(sched.Steps)+1)
		}
		st := cl.State()
		if rep.FinalNow != st.Now || rep.FinalResidents != len(st.VMs) {
			t.Fatalf("report final state (now=%d residents=%d) disagrees with server (now=%d residents=%d)",
				rep.FinalNow, rep.FinalResidents, st.Now, len(st.VMs))
		}
		if rep.FinalNow != sched.Horizon+1 {
			t.Fatalf("final clock %d, want horizon+1 = %d", rep.FinalNow, sched.Horizon+1)
		}
		if rep.StateDigest == "" || len(rep.OutcomeDigest) != 64 {
			t.Fatalf("missing digests: state=%q outcome=%q", rep.StateDigest, rep.OutcomeDigest)
		}
		return rep
	}
	a := run()
	b := run()
	if a.OutcomeDigest != b.OutcomeDigest {
		t.Fatal("same seed against fresh servers should yield identical outcome digests")
	}
	if a.StateDigest != b.StateDigest {
		t.Fatal("same seed against fresh servers should yield identical final state digests")
	}
	if a.MetricsDelta["vmalloc_cluster_admissions_total"] != float64(a.Accepted) {
		t.Fatalf("metrics delta admissions %g != accepted %d",
			a.MetricsDelta["vmalloc_cluster_admissions_total"], a.Accepted)
	}
	if a.MetricsDelta["vmalloc_cluster_rejections_total"] != float64(a.Rejected) {
		t.Fatalf("metrics delta rejections %g != rejected %d",
			a.MetricsDelta["vmalloc_cluster_rejections_total"], a.Rejected)
	}
}
