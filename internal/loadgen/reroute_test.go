package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vmalloc/internal/api"
	"vmalloc/internal/cluster"
	"vmalloc/internal/clusterhttp"
	"vmalloc/internal/model"
	"vmalloc/internal/obs"
	"vmalloc/internal/shard"
)

// elasticDeployment is three live shards and a gate that starts routing
// to only the first two, for the stale-epoch re-route tests: the
// MultiClient drives the shards directly while the gate (the topology
// authority) resizes underneath it.
type elasticDeployment struct {
	gateSrv  *httptest.Server
	shardSrv map[string]*httptest.Server
	m1       *shard.Map // epoch 1: s0, s1
	epoch2   api.Topology
}

func newElasticDeployment(t *testing.T) *elasticDeployment {
	t.Helper()
	d := &elasticDeployment{shardSrv: make(map[string]*httptest.Server, 3)}
	var all []shard.Shard
	for i, name := range []string{"s0", "s1", "s2"} {
		servers := testServers(8)
		for j := range servers {
			servers[j].ID = 1000*(i+1) + j
			servers[j].TransitionTime = 0
		}
		cl, err := cluster.Open(cluster.Config{Servers: servers, IdleTimeout: 1000})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		srv := httptest.NewServer(clusterhttp.New(cl, clusterhttp.Config{Metrics: obs.NewHTTPMetrics()}))
		t.Cleanup(srv.Close)
		d.shardSrv[name] = srv
		all = append(all, shard.Shard{Name: name, Addr: srv.URL})
	}
	m1, err := shard.NewMap(all[:2])
	if err != nil {
		t.Fatal(err)
	}
	d.m1 = m1.WithEpoch(1)
	d.epoch2 = api.Topology{Epoch: 2, Shards: []api.TopologyShard{
		{Name: "s0", URL: all[0].Addr},
		{Name: "s1", URL: all[1].Addr},
		{Name: "s2", URL: all[2].Addr},
	}}
	gate := shard.NewGate(d.m1, shard.Config{Metrics: obs.NewHTTPMetrics()})
	d.gateSrv = httptest.NewServer(gate.Handler())
	t.Cleanup(d.gateSrv.Close)
	return d
}

// resize POSTs the epoch-2 topology to the gate and waits for the drain
// to finish cleanly.
func (d *elasticDeployment) resize(t *testing.T) {
	t.Helper()
	body, err := json.Marshal(d.epoch2)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.gateSrv.URL+"/v1/topology", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topology post status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(d.gateSrv.URL + "/v1/topology")
		if err != nil {
			t.Fatal(err)
		}
		var tr api.TopologyResponse
		err = json.NewDecoder(resp.Body).Decode(&tr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Rebalance.Active {
			if tr.Rebalance.Failed != 0 || tr.Rebalance.LastError != "" {
				t.Fatalf("rebalance failed: %+v", tr.Rebalance)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebalance still active: %+v", tr.Rebalance)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMultiClientStaleEpochReroute: a MultiClient with a topology source
// keeps succeeding across a live resize. It admits against the epoch-1
// map, the gate grows the deployment to three shards (ratcheting every
// shard's epoch fence), and the client's next ops — stamped with the
// now-stale epoch — are refused with 409 stale_epoch, refreshed from
// the gate, and retried against the new owners. No op fails.
func TestMultiClientStaleEpochReroute(t *testing.T) {
	d := newElasticDeployment(t)
	ctx := context.Background()

	mc := NewMultiClient(d.m1, func(c *Client) { c.Timeout = 5 * time.Second })
	mc.SetTopologySource(d.gateSrv.URL)
	if mc.ShardClient("s0").Epoch() != 1 {
		t.Fatal("SetTopologySource did not stamp the map epoch on the shard clients")
	}

	reqs := make([]api.AdmitRequest, 0, 24)
	for id := 1; id <= 24; id++ {
		reqs = append(reqs, api.AdmitRequest{ID: id, Demand: model.Resources{CPU: 1, Mem: 1}, Start: 1, DurationMinutes: 60})
	}
	adms, err := mc.Admit(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range adms {
		if !a.Accepted {
			t.Fatalf("pre-resize admission rejected: %+v", a)
		}
	}
	if _, err := mc.AdvanceClock(ctx, 3); err != nil {
		t.Fatal(err)
	}

	d.resize(t)

	// The client is still routing on epoch 1; these ops hit fenced
	// shards, refresh, and retry — none may surface as failures.
	reqs2 := make([]api.AdmitRequest, 0, 12)
	for id := 25; id <= 36; id++ {
		reqs2 = append(reqs2, api.AdmitRequest{ID: id, Demand: model.Resources{CPU: 1, Mem: 1}, Start: 4, DurationMinutes: 30})
	}
	adms2, err := mc.Admit(ctx, reqs2)
	if err != nil {
		t.Fatalf("post-resize admit through stale map: %v", err)
	}
	for _, a := range adms2 {
		if !a.Accepted {
			t.Fatalf("post-resize admission rejected: %+v", a)
		}
	}
	if mc.Rerouted() == 0 {
		t.Fatal("no op was rerouted — the stale-epoch path never triggered")
	}
	if mc.Refreshed() != 1 {
		t.Fatalf("refreshed %d times, want 1", mc.Refreshed())
	}
	if got := mc.Map().Epoch(); got != 2 {
		t.Fatalf("map epoch after reroute = %d, want 2", got)
	}
	if mc.ShardClient("s2") == nil {
		t.Fatal("refreshed client set is missing the joined shard s2")
	}
	if mc.ShardClient("s0").Epoch() != 2 {
		t.Fatal("surviving shard client not restamped with epoch 2")
	}

	// Releases route by the refreshed map, including VMs the drain moved
	// to the joined shard.
	m2, err := shard.FromTopology(d.epoch2)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for id := 1; id <= 24; id++ {
		if m2.Assign(id).Name == "s2" {
			moved++
			ok, err := mc.Release(ctx, id)
			if err != nil || !ok {
				t.Fatalf("release of adopted vm %d: ok=%v err=%v", id, ok, err)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no vm in 1..24 hashes to the joined shard; the scenario exercises nothing")
	}

	// The aggregated view over the new map adds up.
	sum, err := mc.StateSummary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := 36 - moved; sum.Residents != want {
		t.Fatalf("residents = %d, want %d", sum.Residents, want)
	}
}

// TestMultiClientStaleEpochWithoutSource: with no topology source the
// stale_epoch refusal stays a hard error — the client has no authority
// to refresh from, and silently retrying the same shard would loop.
func TestMultiClientStaleEpochWithoutSource(t *testing.T) {
	d := newElasticDeployment(t)
	ctx := context.Background()

	mc := NewMultiClient(d.m1, nil)
	// Stamp an epoch by hand, but configure no source.
	for _, name := range []string{"s0", "s1"} {
		mc.ShardClient(name).SetEpoch(1)
	}
	d.resize(t)

	_, err := mc.Admit(ctx, []api.AdmitRequest{{ID: 1, Demand: model.Resources{CPU: 1, Mem: 1}, Start: 1, DurationMinutes: 10}})
	if !staleEpoch(err) {
		t.Fatalf("admit error = %v, want a stale_epoch refusal surfaced to the caller", err)
	}
	if mc.Rerouted() != 0 || mc.Refreshed() != 0 {
		t.Fatalf("sourceless client rerouted=%d refreshed=%d, want 0/0", mc.Rerouted(), mc.Refreshed())
	}
}

// TestFetchTopology: the bootstrap used by vmload -topology-source
// returns the gate's live map, and a non-gate target is a typed error.
func TestFetchTopology(t *testing.T) {
	d := newElasticDeployment(t)
	m, err := FetchTopology(context.Background(), d.gateSrv.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 1 || m.Len() != 2 {
		t.Fatalf("fetched epoch %d with %d shards, want epoch 1 with 2", m.Epoch(), m.Len())
	}
	d.resize(t)
	m2, err := FetchTopology(context.Background(), d.gateSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Epoch() != 2 || m2.Len() != 3 {
		t.Fatalf("fetched epoch %d with %d shards after resize, want epoch 2 with 3", m2.Epoch(), m2.Len())
	}
	if _, err := FetchTopology(context.Background(), d.shardSrv["s0"].URL); err == nil {
		t.Fatal("fetching topology from a plain shard should fail (no /v1/topology)")
	} else if got := fmt.Sprint(err); got == "" {
		t.Fatal("empty error")
	}
}
