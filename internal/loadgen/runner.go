package loadgen

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"
	"time"

	"vmalloc/internal/api"
)

// Options tune how a Runner replays a schedule.
type Options struct {
	// Workers sizes the pool issuing concurrent requests (admission
	// chunks and releases); 0 means 8.
	Workers int
	// MinuteInterval is the wall-clock budget per fleet minute — the
	// time-compression knob (20ms replays a 1440-minute day in ~29s).
	// 0 runs flat out. Pacing is open-loop: a step that misses its
	// target is issued immediately and counted in Report.BehindSteps,
	// never silently rescheduled.
	MinuteInterval time.Duration
	// Chunk splits a step's admissions into concurrent HTTP calls of at
	// most this many requests — the concurrency stressor for the
	// server's micro-batcher. 0 sends each step as one call, which also
	// makes the admission/rejection sequence deterministic for a given
	// (spec, seed) even under capacity pressure; chunked runs may
	// reorder placement between racing calls when capacity is tight.
	Chunk int
	// SkipClock disables the per-step /v1/clock advances (and the final
	// drain tick), for servers whose clock is driven elsewhere.
	SkipClock bool
	// ConsolidateEvery triggers a consolidation pass
	// (POST /v1/consolidate) after the clock tick of every step whose
	// minute is a multiple of this value; 0 never consolidates.
	ConsolidateEvery int
	// ConsolidatePolicy is the victim-selection policy for those passes;
	// "" lets the server pick its configured default.
	ConsolidatePolicy string
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return 8
	}
	return o.Workers
}

// API is the client surface the runner drives. A single *Client
// satisfies it (pointed at one vmserve or at a vmgate, which speaks the
// same contract), and *MultiClient satisfies it by routing over a shard
// map — so the same schedule replays unchanged against any topology.
type API interface {
	Admit(ctx context.Context, reqs []api.AdmitRequest) ([]api.AdmitResponse, error)
	Release(ctx context.Context, id int) (released bool, err error)
	AdvanceClock(ctx context.Context, now int) (int, error)
	Consolidate(ctx context.Context, req api.ConsolidateRequest) (*api.ConsolidateResponse, error)
	Policies(ctx context.Context) (*api.PoliciesResponse, error)
	DebugTraces(ctx context.Context, query string) (*api.TracesResponse, error)
	StateSummary(ctx context.Context) (StateSummary, error)
	Metrics(ctx context.Context) (Metrics, error)
	Retried() int
}

// StateSummary is the slice of server state the runner's report needs,
// common to a single shard's state and a vmgate's aggregated state.
type StateSummary struct {
	Now         int
	Residents   int
	TotalEnergy float64
	Digest      string
}

// Runner replays a Schedule against a server, minute-step by
// minute-step: advance the clock, issue the minute's admissions, then
// its releases, pacing steps by MinuteInterval. Within a step calls run
// concurrently over the worker pool; the step boundary is a barrier, so
// the operation order the server observes is reproducible at minute
// granularity.
type Runner struct {
	Client   API
	Schedule *Schedule
	Opts     Options
}

// run-time collector shared by a step's concurrent jobs.
type collector struct {
	mu       sync.Mutex
	admitLat []time.Duration
	relLat   []time.Duration
	clockLat []time.Duration
	errs     []error
}

func (co *collector) admit(d time.Duration) {
	co.mu.Lock()
	co.admitLat = append(co.admitLat, d)
	co.mu.Unlock()
}

func (co *collector) release(d time.Duration) {
	co.mu.Lock()
	co.relLat = append(co.relLat, d)
	co.mu.Unlock()
}

func (co *collector) clock(d time.Duration) {
	co.mu.Lock()
	co.clockLat = append(co.clockLat, d)
	co.mu.Unlock()
}

func (co *collector) err(e error) {
	co.mu.Lock()
	co.errs = append(co.errs, e)
	co.mu.Unlock()
}

// forEach drains jobs through the worker pool and waits for all of them.
func (r *Runner) forEach(jobs []func()) {
	w := r.Opts.workers()
	if w > len(jobs) {
		w = len(jobs)
	}
	if w <= 1 {
		for _, j := range jobs {
			j()
		}
		return
	}
	ch := make(chan func())
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				j()
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
}

// releaseOutcome is one release's result, indexed so the digest log can
// be written in schedule order after the concurrent calls finish.
type releaseOutcome struct {
	issued   bool
	released bool
	failed   bool
}

// Run replays the schedule. The returned report is complete even when an
// operation failed (failures are counted, not fatal); the error is
// non-nil only when the run could not proceed at all (context ended, or
// the final state scrape failed).
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	sched := r.Schedule
	// Profile and Seed are presentation fields the caller fills in (the
	// runner only sees the materialized schedule).
	rep := &Report{Steps: len(sched.Steps)}
	retriedBefore := r.Client.Retried()

	before, err := r.Client.Metrics(ctx)
	if err != nil {
		before = nil // the run proceeds; the report just loses the delta
	}

	co := &collector{}
	// Trace-derived schedules can carry sparse IDs above NumVMs; size the
	// accepted table by the largest one.
	accepted := make([]bool, max(sched.NumVMs, sched.MaxID)+1)
	outcomes := sha256.New()
	start := time.Now()

	for i := range sched.Steps {
		step := &sched.Steps[i]
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		r.pace(ctx, rep, start, step.Minute)
		if !r.Opts.SkipClock {
			r.tick(ctx, rep, co, step.Minute)
		}
		if r.Opts.ConsolidateEvery > 0 && step.Minute%r.Opts.ConsolidateEvery == 0 {
			r.consolidate(ctx, rep, co, step.Minute)
		}
		r.admitStep(ctx, rep, co, step, accepted, outcomes)
		r.releaseStep(ctx, rep, co, step, accepted, outcomes)
	}
	// Drain: advance past the last scheduled end so every departure and
	// idle-sleep the run provoked is processed before the final scrape.
	if !r.Opts.SkipClock && sched.Horizon > 0 {
		r.tick(ctx, rep, co, sched.Horizon+1)
	}
	rep.Wall = time.Since(start)

	rep.Errors = len(co.errs)
	rep.Retries = r.Client.Retried() - retriedBefore
	rep.AdmitLatency = summarize(co.admitLat)
	rep.ReleaseLatency = summarize(co.relLat)
	rep.ClockLatency = summarize(co.clockLat)
	rep.OutcomeDigest = hex.EncodeToString(outcomes.Sum(nil))

	if before != nil {
		if after, err := r.Client.Metrics(ctx); err == nil {
			rep.MetricsDelta = after.Delta(before)
		}
	}
	sum, err := r.Client.StateSummary(ctx)
	if err != nil {
		return rep, fmt.Errorf("loadgen: final state scrape: %w", err)
	}
	rep.FinalNow = sum.Now
	rep.FinalResidents = sum.Residents
	rep.FinalEnergy = sum.TotalEnergy
	rep.StateDigest = sum.Digest
	// The arena readout is best-effort: an older server without
	// GET /v1/policies just leaves the report's arena section empty.
	if pr, err := r.Client.Policies(ctx); err == nil {
		rep.Champion = pr.Champion
		rep.ArenaBatches = pr.EvaluatedBatches
		rep.ArenaDropped = pr.DroppedEvents
		rep.Policies = pr.Policies
	}
	// Likewise best-effort: per-stage span latencies (queue wait, scan,
	// fsync, ...) from the server's trace buffer, absent when the server
	// runs without a span store.
	if tr, err := r.Client.DebugTraces(ctx, ""); err == nil {
		rep.StageLatency = stageLatency(tr)
	}
	return rep, nil
}

// pace sleeps until the step's wall-clock target (open-loop: late steps
// proceed immediately and are counted).
func (r *Runner) pace(ctx context.Context, rep *Report, start time.Time, minute int) {
	if r.Opts.MinuteInterval <= 0 {
		return
	}
	target := start.Add(time.Duration(minute-1) * r.Opts.MinuteInterval)
	now := time.Now()
	if now.Before(target) {
		select {
		case <-time.After(target.Sub(now)):
		case <-ctx.Done():
		}
		return
	}
	if now.Sub(target) > r.Opts.MinuteInterval {
		rep.BehindSteps++
	}
}

// consolidate runs one pay-for-itself pass between the tick and the
// minute's admissions. The step barrier means no pass races another, so
// a consolidation_busy here is a genuine failure, not contention.
func (r *Runner) consolidate(ctx context.Context, rep *Report, co *collector, minute int) {
	res, err := r.Client.Consolidate(ctx, api.ConsolidateRequest{Policy: r.Opts.ConsolidatePolicy})
	if err != nil {
		co.err(fmt.Errorf("consolidate at minute %d: %w", minute, err))
		return
	}
	rep.Consolidations++
	rep.Migrations += res.Executed
	rep.MigrationSaved += res.EnergySavedWattMinutes
}

func (r *Runner) tick(ctx context.Context, rep *Report, co *collector, minute int) {
	t0 := time.Now()
	_, err := r.Client.AdvanceClock(ctx, minute)
	co.clock(time.Since(t0))
	if err != nil {
		co.err(fmt.Errorf("clock %d: %w", minute, err))
		return
	}
	rep.ClockTicks++
}

// admitStep issues the minute's admissions (chunked over the pool when
// Opts.Chunk > 0) and folds the outcomes into the report, the accepted
// table and the outcome digest — the digest walk is in schedule order,
// independent of call-completion order.
func (r *Runner) admitStep(ctx context.Context, rep *Report, co *collector, step *Step, accepted []bool, outcomes hash.Hash) {
	if len(step.Admits) == 0 {
		return
	}
	chunkSize := r.Opts.Chunk
	if chunkSize <= 0 {
		chunkSize = len(step.Admits)
	}
	type chunkResult struct {
		adms []api.AdmitResponse
		err  error
	}
	var chunks [][]api.AdmitRequest
	for off := 0; off < len(step.Admits); off += chunkSize {
		end := off + chunkSize
		if end > len(step.Admits) {
			end = len(step.Admits)
		}
		chunks = append(chunks, step.Admits[off:end])
	}
	results := make([]chunkResult, len(chunks))
	jobs := make([]func(), len(chunks))
	for ci := range chunks {
		ci := ci
		jobs[ci] = func() {
			t0 := time.Now()
			adms, err := r.Client.Admit(ctx, chunks[ci])
			co.admit(time.Since(t0))
			results[ci] = chunkResult{adms: adms, err: err}
		}
	}
	r.forEach(jobs)

	for ci, res := range results {
		rep.Sent += len(chunks[ci])
		if res.err != nil {
			co.err(fmt.Errorf("admit minute %d: %w", step.Minute, res.err))
			for _, req := range chunks[ci] {
				fmt.Fprintf(outcomes, "a %d E\n", req.ID)
			}
			continue
		}
		for _, adm := range res.adms {
			if adm.Accepted {
				rep.Accepted++
				accepted[adm.ID] = true
				fmt.Fprintf(outcomes, "a %d 1\n", adm.ID)
			} else {
				rep.Rejected++
				fmt.Fprintf(outcomes, "a %d 0\n", adm.ID)
			}
		}
	}
}

// releaseStep issues the minute's releases concurrently, skipping VMs
// whose admission was rejected (releasing them would only 404).
func (r *Runner) releaseStep(ctx context.Context, rep *Report, co *collector, step *Step, accepted []bool, outcomes hash.Hash) {
	if len(step.Releases) == 0 {
		return
	}
	results := make([]releaseOutcome, len(step.Releases))
	var jobs []func()
	for ri, id := range step.Releases {
		if !accepted[id] {
			continue
		}
		ri, id := ri, id
		results[ri].issued = true
		jobs = append(jobs, func() {
			t0 := time.Now()
			ok, err := r.Client.Release(ctx, id)
			co.release(time.Since(t0))
			if err != nil {
				results[ri].failed = true
				co.err(fmt.Errorf("release %d at minute %d: %w", id, step.Minute, err))
				return
			}
			results[ri].released = ok
		})
	}
	r.forEach(jobs)
	for ri, id := range step.Releases {
		res := results[ri]
		switch {
		case !res.issued:
			rep.ReleaseSkips++
			fmt.Fprintf(outcomes, "r %d S\n", id)
		case res.failed:
			fmt.Fprintf(outcomes, "r %d E\n", id)
		case res.released:
			rep.Releases++
			fmt.Fprintf(outcomes, "r %d 1\n", id)
		default:
			rep.ReleaseMisses++
			fmt.Fprintf(outcomes, "r %d 0\n", id)
		}
	}
}
