package loadgen

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"vmalloc/internal/api"
	"vmalloc/internal/cluster"
	"vmalloc/internal/clusterhttp"
	"vmalloc/internal/obs"
	"vmalloc/internal/shard"
)

// shardedDeployment is two real vmserve shards behind one real vmgate,
// all in process, for the sharded soak tests.
type shardedDeployment struct {
	m        *shard.Map
	gate     *shard.Gate
	gateSrv  *httptest.Server
	shardSrv map[string]*httptest.Server
}

func newShardedDeployment(t *testing.T, serversPerShard int) *shardedDeployment {
	t.Helper()
	d := &shardedDeployment{shardSrv: make(map[string]*httptest.Server, 2)}
	var shards []shard.Shard
	for i, name := range []string{"s0", "s1"} {
		servers := testServers(serversPerShard)
		for j := range servers {
			servers[j].ID = 1000*(i+1) + j // distinct server IDs per shard
		}
		cl, err := cluster.Open(cluster.Config{
			Servers:     servers,
			IdleTimeout: 5,
			BatchWindow: 200 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		srv := httptest.NewServer(clusterhttp.New(cl, clusterhttp.Config{Metrics: obs.NewHTTPMetrics()}))
		t.Cleanup(srv.Close)
		d.shardSrv[name] = srv
		shards = append(shards, shard.Shard{Name: name, Addr: srv.URL})
	}
	m, err := shard.NewMap(shards)
	if err != nil {
		t.Fatal(err)
	}
	d.m = m
	d.gate = shard.NewGate(m, shard.Config{Metrics: obs.NewHTTPMetrics()})
	d.gateSrv = httptest.NewServer(d.gate.Handler())
	t.Cleanup(d.gateSrv.Close)
	return d
}

// verifyResidency checks that every VM resident anywhere in the
// deployment sits on exactly the shard its ID hashes to, and returns
// the total resident count and the per-shard digests.
func (d *shardedDeployment) verifyResidency(t *testing.T) (int, map[string]string) {
	t.Helper()
	total := 0
	digests := make(map[string]string, len(d.shardSrv))
	for name, srv := range d.shardSrv {
		st, digest, err := NewClient(srv.URL).State(context.Background())
		if err != nil {
			t.Fatalf("state of shard %s: %v", name, err)
		}
		digests[name] = digest
		total += len(st.VMs)
		for _, p := range st.VMs {
			if owner := d.m.Assign(p.VM.ID).Name; owner != name {
				t.Errorf("vm %d resident on shard %s but hashes to %s", p.VM.ID, name, owner)
			}
		}
	}
	return total, digests
}

func shardedSoakSpec() ScheduleSpec {
	spec := ScheduleSpec{
		Profile:         DiurnalProfile{MeanInterArrival: 0.4, PeakToTrough: 3, Period: 300},
		NumVMs:          800,
		MeanLength:      30,
		ReleaseFraction: 0.4,
		Seed:            20260805,
	}
	if testing.Short() {
		spec.NumVMs = 200
	}
	return spec
}

// TestShardedSoakThroughGate replays a full seeded schedule through a
// vmgate fronting two shards, with chunked concurrent admissions (run
// under -race). Afterwards: zero failed operations, every resident VM
// on the shard its ID hashes to, and the gate's aggregated digest equal
// to the combination of the digests the shards themselves serve.
func TestShardedSoakThroughGate(t *testing.T) {
	d := newShardedDeployment(t, 24)
	sched, err := BuildSchedule(shardedSoakSpec())
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(d.gateSrv.URL)
	r := &Runner{Client: client, Schedule: sched,
		Opts: Options{Workers: 16, Chunk: 8, ConsolidateEvery: 30, ConsolidatePolicy: api.PolicyMinUtilization}}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("sharded soak reported %d errors", rep.Errors)
	}
	if rep.Sent != sched.NumVMs {
		t.Fatalf("sent %d admissions, want %d", rep.Sent, sched.NumVMs)
	}
	t.Logf("gate soak: %d ops, %d accepted, %d rejected, %d released, %d migrated in %s",
		sched.Ops(), rep.Accepted, rep.Rejected, rep.Releases, rep.Migrations, rep.Wall.Round(time.Millisecond))
	if rep.Consolidations == 0 {
		t.Fatal("gate soak ran no consolidation passes")
	}

	// The gate's merged migration history reconciles with the runner's
	// count, every record stamped with a shard that really owns its VM.
	hist, err := client.Migrations(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if hist.Count != rep.Migrations {
		t.Errorf("gate history holds %d migrations, report executed %d", hist.Count, rep.Migrations)
	}
	for _, m := range hist.Migrations {
		if owner := d.m.Assign(m.VM).Name; m.Shard != owner {
			t.Errorf("migration %+v stamped %s, vm hashes to %s", m, m.Shard, owner)
		}
	}

	residents, digests := d.verifyResidency(t)
	if residents != rep.FinalResidents {
		t.Errorf("shards hold %d residents, gate reported %d", residents, rep.FinalResidents)
	}
	if want := shard.CombineDigests(digests); rep.StateDigest != want {
		t.Errorf("gate digest %s != combined per-shard digests %s", rep.StateDigest, want)
	}

	// The gate's full aggregated state agrees with the per-shard truth.
	gs, hdrDigest, err := client.GateState(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gs.Digest != hdrDigest || gs.Digest != rep.StateDigest {
		t.Errorf("digest mismatch: body %s header %s report %s", gs.Digest, hdrDigest, rep.StateDigest)
	}
	if gs.Admitted != rep.Accepted {
		t.Errorf("gate admitted %d, report accepted %d", gs.Admitted, rep.Accepted)
	}
	for _, ss := range gs.Shards {
		if digests[ss.Shard] != ss.Digest {
			t.Errorf("shard %s digest drifted between scrapes", ss.Shard)
		}
	}
}

// TestShardedSoakMultiClient replays the same schedule through a
// MultiClient routing straight at the shards — no gate in the data path
// — and demands the same invariants, plus digest agreement with a gate
// observing the same deployment: routing is a property of the shard
// map, not of which process evaluates it.
func TestShardedSoakMultiClient(t *testing.T) {
	d := newShardedDeployment(t, 24)
	sched, err := BuildSchedule(shardedSoakSpec())
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMultiClient(d.m, nil)
	if err := mc.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	r := &Runner{Client: mc, Schedule: sched,
		Opts: Options{Workers: 16, Chunk: 8, ConsolidateEvery: 30, ConsolidatePolicy: api.PolicyMinUtilization}}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("multi-client soak reported %d errors", rep.Errors)
	}

	residents, digests := d.verifyResidency(t)
	if residents != rep.FinalResidents {
		t.Errorf("shards hold %d residents, report says %d", residents, rep.FinalResidents)
	}
	if want := shard.CombineDigests(digests); rep.StateDigest != want {
		t.Errorf("multi-client digest %s != combined per-shard digests %s", rep.StateDigest, want)
	}
	// A gate over the same live deployment serves the same digest.
	_, gateDigest, err := NewClient(d.gateSrv.URL).GateState(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gateDigest != rep.StateDigest {
		t.Errorf("gate sees digest %s, multi-client computed %s", gateDigest, rep.StateDigest)
	}
	// Summed metrics cover both shards' admissions.
	met, err := mc.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := met["vmalloc_cluster_admissions_total"]; got != float64(rep.Accepted) {
		t.Errorf("summed admissions %g, want %d", got, rep.Accepted)
	}
	if got := met["vmalloc_cluster_migrations_total"]; got != float64(rep.Migrations) {
		t.Errorf("summed migrations %g, want %d", got, rep.Migrations)
	}
}

// TestShardedFailoverScopedErrors kills one shard and verifies, through
// the typed client, that the gate degrades exactly the dead shard's key
// range: typed 503 shard_down envelopes for its IDs, normal service for
// the other shard's.
func TestShardedFailoverScopedErrors(t *testing.T) {
	d := newShardedDeployment(t, 4)
	d.shardSrv["s1"].Close()
	d.gate.Prober().CheckNow(context.Background())

	idFor := func(name string) int {
		for id := 1; ; id++ {
			if d.m.Assign(id).Name == name {
				return id
			}
		}
	}
	client := NewClient(d.gateSrv.URL)
	client.Retries = -1 // a dead shard stays dead; retrying only slows the test

	req := func(id int) []api.AdmitRequest {
		return []api.AdmitRequest{{ID: id, Demand: testServers(1)[0].Capacity, DurationMinutes: 10}}
	}
	_, err := client.Admit(context.Background(), req(idFor("s1")))
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("dead-shard admit error %v, want *api.Error", err)
	}
	if ae.Status != 503 || ae.Envelope.Code != api.CodeShardDown {
		t.Fatalf("dead-shard admit: status %d code %q, want 503 shard_down", ae.Status, ae.Envelope.Code)
	}

	adms, err := client.Admit(context.Background(), req(idFor("s0")))
	if err != nil {
		t.Fatalf("live-shard admit failed: %v (a dead shard must not take the live one with it)", err)
	}
	if len(adms) != 1 || !adms[0].Accepted {
		t.Fatalf("live-shard admit %+v", adms)
	}

	// Releases to the dead shard's range: same scoped typed failure.
	_, err = client.Release(context.Background(), idFor("s1"))
	if !errors.As(err, &ae) || ae.Envelope.Code != api.CodeShardDown {
		t.Fatalf("dead-shard release error %v, want shard_down envelope", err)
	}
}
