package loadgen

import (
	"context"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vmalloc/internal/api"
	"vmalloc/internal/obs"
	"vmalloc/internal/shard"
)

// MultiClient drives several vmserve shards directly — no vmgate in the
// path — using the same rendezvous map a gate would, so a load run
// through a MultiClient places every VM exactly where a gate-fronted
// run would. It satisfies the runner's API: admissions split by owning
// shard, releases routed by ID, clock advances fanned out, and state
// aggregated with the combined digest (shard.CombineDigests), making
// its reports digest-comparable with a gate's /v1/state.
type MultiClient struct {
	m       *shard.Map
	clients map[string]*Client
}

// NewMultiClient builds a multi-target client over the map's shards.
// configure (optional) is applied to each per-shard Client before use —
// the hook for timeouts, retry policy, or a shared http.Client.
func NewMultiClient(m *shard.Map, configure func(*Client)) *MultiClient {
	mc := &MultiClient{m: m, clients: make(map[string]*Client, m.Len())}
	for _, s := range m.Shards() {
		c := NewClient(s.Addr)
		if configure != nil {
			configure(c)
		}
		mc.clients[s.Name] = c
	}
	return mc
}

// Map returns the routing map, so harnesses can compute expected
// placements.
func (mc *MultiClient) Map() *shard.Map { return mc.m }

// ShardClient returns the per-shard client for direct inspection.
func (mc *MultiClient) ShardClient(name string) *Client { return mc.clients[name] }

// Admit splits the batch by owning shard, issues the sub-batches
// concurrently, and reassembles the outcomes in request order. Every
// request must carry an explicit VM ID (the routing key); the
// generated schedules always do.
func (mc *MultiClient) Admit(ctx context.Context, reqs []api.AdmitRequest) ([]api.AdmitResponse, error) {
	groups := make(map[string][]int)
	for i, req := range reqs {
		if req.ID <= 0 {
			return nil, fmt.Errorf("loadgen: admission %d has no vm id (multi-target routing needs one)", i)
		}
		name := mc.m.Assign(req.ID).Name
		groups[name] = append(groups[name], i)
	}
	out := make([]api.AdmitResponse, len(reqs))
	var wg sync.WaitGroup
	errs := make(map[string]error, len(groups))
	var mu sync.Mutex
	for name, idxs := range groups {
		sub := make([]api.AdmitRequest, len(idxs))
		for j, i := range idxs {
			sub[j] = reqs[i]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			adms, err := mc.clients[name].Admit(ctx, sub)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[name] = err
				return
			}
			for j, i := range idxs {
				out[i] = adms[j]
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		names := make([]string, 0, len(errs))
		for n := range errs {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("loadgen: admit on shard %s: %w", names[0], errs[names[0]])
	}
	return out, nil
}

// Release routes the release to the shard owning the ID.
func (mc *MultiClient) Release(ctx context.Context, id int) (bool, error) {
	return mc.clients[mc.m.Assign(id).Name].Release(ctx, id)
}

// AdvanceClock fans the advance out to every shard and returns the
// slowest resulting clock. Shard clocks are monotonic, so replaying an
// advance is a no-op and a partially failed fan-out is safe to retry.
func (mc *MultiClient) AdvanceClock(ctx context.Context, now int) (int, error) {
	type result struct {
		now int
		err error
	}
	results := scatter(mc, func(c *Client) result {
		n, err := c.AdvanceClock(ctx, now)
		return result{now: n, err: err}
	})
	minNow := 0
	for i, res := range results {
		if res.err != nil {
			return 0, fmt.Errorf("loadgen: clock on shard %s: %w", mc.m.Shards()[i].Name, res.err)
		}
		if i == 0 || res.now < minNow {
			minNow = res.now
		}
	}
	return minNow, nil
}

// MigrateVM routes the manual migration to the shard owning the VM ID
// and stamps the owning shard on the returned record, mirroring what a
// vmgate would serve.
func (mc *MultiClient) MigrateVM(ctx context.Context, vm, server int) (api.MigrationRecord, error) {
	name := mc.m.Assign(vm).Name
	rec, err := mc.clients[name].MigrateVM(ctx, vm, server)
	if err != nil {
		return api.MigrationRecord{}, err
	}
	rec.Shard = name
	return rec, nil
}

// Consolidate fans one pass out to every shard and merges the outcomes
// the way a vmgate does: summed donors/moves/savings, the slowest
// shard's clock, the concatenated shard-stamped move list in
// (time, shard, seq) order.
func (mc *MultiClient) Consolidate(ctx context.Context, req api.ConsolidateRequest) (*api.ConsolidateResponse, error) {
	type result struct {
		cr  *api.ConsolidateResponse
		err error
	}
	results := scatter(mc, func(c *Client) result {
		cr, err := c.Consolidate(ctx, req)
		return result{cr: cr, err: err}
	})
	out := &api.ConsolidateResponse{Moves: []api.MigrationRecord{}}
	for i, res := range results {
		name := mc.m.Shards()[i].Name
		if res.err != nil {
			return nil, fmt.Errorf("loadgen: consolidate on shard %s: %w", name, res.err)
		}
		if i == 0 {
			out.Clock = res.cr.Clock
			out.Policy = res.cr.Policy
		}
		if res.cr.Clock < out.Clock {
			out.Clock = res.cr.Clock
		}
		out.Donors += res.cr.Donors
		out.Executed += res.cr.Executed
		out.EnergySavedWattMinutes += res.cr.EnergySavedWattMinutes
		for _, m := range res.cr.Moves {
			m.Shard = name
			out.Moves = append(out.Moves, m)
		}
	}
	sortMigrations(out.Moves)
	return out, nil
}

// Migrations merges every shard's history, shard-stamped and ordered by
// (time, shard, seq); a limit= in the query trims the merged list to
// its newest entries, as a vmgate would.
func (mc *MultiClient) Migrations(ctx context.Context, query string) (*api.MigrationsResponse, error) {
	type result struct {
		mr  *api.MigrationsResponse
		err error
	}
	results := scatter(mc, func(c *Client) result {
		mr, err := c.Migrations(ctx, query)
		return result{mr: mr, err: err}
	})
	out := &api.MigrationsResponse{Migrations: []api.MigrationRecord{}}
	for i, res := range results {
		name := mc.m.Shards()[i].Name
		if res.err != nil {
			return nil, fmt.Errorf("loadgen: migrations on shard %s: %w", name, res.err)
		}
		out.Count += res.mr.Count
		for _, m := range res.mr.Migrations {
			m.Shard = name
			out.Migrations = append(out.Migrations, m)
		}
	}
	sortMigrations(out.Migrations)
	if vals, err := url.ParseQuery(query); err == nil {
		if n, err := strconv.Atoi(vals.Get("limit")); err == nil && n > 0 && len(out.Migrations) > n {
			out.Migrations = out.Migrations[len(out.Migrations)-n:]
		}
	}
	return out, nil
}

// Policies merges every shard's arena readout the way a vmgate does:
// challenger reports shard-stamped and ordered by (name, shard),
// champion energy and arena counters summed, the slowest shard's clock,
// distinct champion names joined with ", ".
func (mc *MultiClient) Policies(ctx context.Context) (*api.PoliciesResponse, error) {
	type result struct {
		pr  *api.PoliciesResponse
		err error
	}
	results := scatter(mc, func(c *Client) result {
		pr, err := c.Policies(ctx)
		return result{pr: pr, err: err}
	})
	out := &api.PoliciesResponse{Policies: []api.PolicyReport{}}
	var champions []string
	for i, res := range results {
		name := mc.m.Shards()[i].Name
		if res.err != nil {
			return nil, fmt.Errorf("loadgen: policies on shard %s: %w", name, res.err)
		}
		seen := false
		for _, ch := range champions {
			if ch == res.pr.Champion {
				seen = true
				break
			}
		}
		if !seen {
			champions = append(champions, res.pr.Champion)
		}
		if i == 0 || res.pr.Now < out.Now {
			out.Now = res.pr.Now
		}
		out.ChampionEnergyWattMinutes += res.pr.ChampionEnergyWattMinutes
		out.EvaluatedBatches += res.pr.EvaluatedBatches
		out.DroppedEvents += res.pr.DroppedEvents
		for _, p := range res.pr.Policies {
			p.Shard = name
			out.Policies = append(out.Policies, p)
		}
	}
	out.Champion = strings.Join(champions, ", ")
	sort.Slice(out.Policies, func(a, b int) bool {
		if out.Policies[a].Name != out.Policies[b].Name {
			return out.Policies[a].Name < out.Policies[b].Name
		}
		return out.Policies[a].Shard < out.Policies[b].Shard
	})
	out.Count = len(out.Policies)
	return out, nil
}

// DebugTraces merges every shard's span buffer and regroups the spans
// into one tree per trace id, the way a vmgate's /v1/debug/traces does
// (minus the gate-side spans — there is no gate in this topology). A
// shard that fails the fetch fails the call; the runner treats the
// whole readout as best-effort.
func (mc *MultiClient) DebugTraces(ctx context.Context, query string) (*api.TracesResponse, error) {
	type result struct {
		tr  *api.TracesResponse
		err error
	}
	results := scatter(mc, func(c *Client) result {
		tr, err := c.DebugTraces(ctx, query)
		return result{tr: tr, err: err}
	})
	var all []obs.Span
	for i, res := range results {
		if res.err != nil {
			return nil, fmt.Errorf("loadgen: traces on shard %s: %w", mc.m.Shards()[i].Name, res.err)
		}
		for _, t := range res.tr.Traces {
			all = append(all, t.Spans...)
		}
	}
	traces := api.GroupSpans(all)
	if traces == nil {
		traces = []api.Trace{}
	}
	spans := 0
	for i := range traces {
		spans += len(traces[i].Spans)
	}
	return &api.TracesResponse{Count: len(traces), Spans: spans, Traces: traces}, nil
}

// sortMigrations orders a merged record list deterministically: by
// fleet minute, then owning shard, then journal sequence.
func sortMigrations(ms []api.MigrationRecord) {
	sort.SliceStable(ms, func(a, b int) bool {
		if ms[a].Time != ms[b].Time {
			return ms[a].Time < ms[b].Time
		}
		if ms[a].Shard != ms[b].Shard {
			return ms[a].Shard < ms[b].Shard
		}
		return ms[a].Seq < ms[b].Seq
	})
}

// StateSummary aggregates every shard's summary; the digest is the
// combined per-shard digest, equal to what a vmgate over the same
// shards would serve.
func (mc *MultiClient) StateSummary(ctx context.Context) (StateSummary, error) {
	type result struct {
		sum StateSummary
		err error
	}
	results := scatter(mc, func(c *Client) result {
		sum, err := c.StateSummary(ctx)
		return result{sum: sum, err: err}
	})
	var out StateSummary
	digests := make(map[string]string, len(results))
	for i, res := range results {
		name := mc.m.Shards()[i].Name
		if res.err != nil {
			return StateSummary{}, fmt.Errorf("loadgen: state on shard %s: %w", name, res.err)
		}
		if i == 0 || res.sum.Now < out.Now {
			out.Now = res.sum.Now
		}
		out.Residents += res.sum.Residents
		out.TotalEnergy += res.sum.TotalEnergy
		digests[name] = res.sum.Digest
	}
	out.Digest = shard.CombineDigests(digests)
	return out, nil
}

// Metrics scrapes every shard and sums series point-wise — meaningful
// for the counter deltas the report prints (admissions, rejections,
// releases across the deployment).
func (mc *MultiClient) Metrics(ctx context.Context) (Metrics, error) {
	type result struct {
		m   Metrics
		err error
	}
	results := scatter(mc, func(c *Client) result {
		m, err := c.Metrics(ctx)
		return result{m: m, err: err}
	})
	sum := make(Metrics)
	for i, res := range results {
		if res.err != nil {
			return nil, fmt.Errorf("loadgen: metrics on shard %s: %w", mc.m.Shards()[i].Name, res.err)
		}
		for k, v := range res.m {
			sum[k] += v
		}
	}
	return sum, nil
}

// Retried sums retry attempts across the per-shard clients.
func (mc *MultiClient) Retried() int {
	total := 0
	for _, c := range mc.clients {
		total += c.Retried()
	}
	return total
}

// WaitReady waits until every shard answers /healthz.
func (mc *MultiClient) WaitReady(ctx context.Context, d time.Duration) error {
	type result struct{ err error }
	results := scatter(mc, func(c *Client) result {
		return result{err: c.WaitReady(ctx, d)}
	})
	for i, res := range results {
		if res.err != nil {
			return fmt.Errorf("loadgen: shard %s: %w", mc.m.Shards()[i].Name, res.err)
		}
	}
	return nil
}

// scatter runs fn against every shard's client concurrently, results in
// configuration order. (A free function because methods cannot be
// generic.)
func scatter[T any](mc *MultiClient, fn func(*Client) T) []T {
	shards := mc.m.Shards()
	results := make([]T, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = fn(mc.clients[s.Name])
		}()
	}
	wg.Wait()
	return results
}
