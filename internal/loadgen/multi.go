package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vmalloc/internal/api"
	"vmalloc/internal/obs"
	"vmalloc/internal/shard"
)

// MultiClient drives several vmserve shards directly — no vmgate in the
// path — using the same rendezvous map a gate would, so a load run
// through a MultiClient places every VM exactly where a gate-fronted
// run would. It satisfies the runner's API: admissions split by owning
// shard, releases routed by ID, clock advances fanned out, and state
// aggregated with the combined digest (shard.CombineDigests), making
// its reports digest-comparable with a gate's /v1/state.
//
// When a topology source is set (SetTopologySource), the routing map is
// live: every request carries the map's epoch, a shard that has already
// seen a newer topology answers 409 stale_epoch, and the MultiClient
// reacts by re-fetching GET /v1/topology from the source, swapping in
// the newer map, and retrying the op once against the new owner — the
// op is re-routed, not counted as failed.
type MultiClient struct {
	// mu guards m and clients; both are replaced wholesale on a
	// topology swap, so a snapshot taken under RLock stays internally
	// consistent for the rest of the call even if a swap lands mid-op.
	mu        sync.RWMutex
	m         *shard.Map
	clients   map[string]*Client
	configure func(*Client)

	// source is the base URL serving GET /v1/topology (the gate);
	// empty means the topology is fixed for the process lifetime.
	source string

	// refreshed counts topology swaps; rerouted counts ops retried
	// after a stale_epoch refusal instead of being reported failed.
	refreshed atomic.Int64
	rerouted  atomic.Int64
}

// view is one consistent routing snapshot: the map and the client set
// built for exactly its shards. Methods take one view per call so a
// concurrent topology swap cannot misalign scatter results with shard
// names read later.
type view struct {
	m       *shard.Map
	clients map[string]*Client
}

// NewMultiClient builds a multi-target client over the map's shards.
// configure (optional) is applied to each per-shard Client before use —
// the hook for timeouts, retry policy, or a shared http.Client.
func NewMultiClient(m *shard.Map, configure func(*Client)) *MultiClient {
	mc := &MultiClient{m: m, clients: make(map[string]*Client, m.Len()), configure: configure}
	for _, s := range m.Shards() {
		mc.clients[s.Name] = mc.newShardClient(s)
	}
	return mc
}

// newShardClient builds and configures a client for one shard. Epoch
// stamping is applied by the caller once the whole client set exists.
func (mc *MultiClient) newShardClient(s shard.Shard) *Client {
	c := NewClient(s.Addr)
	if mc.configure != nil {
		mc.configure(c)
	}
	return c
}

// Map returns the routing map, so harnesses can compute expected
// placements.
func (mc *MultiClient) Map() *shard.Map {
	mc.mu.RLock()
	defer mc.mu.RUnlock()
	return mc.m
}

// ShardClient returns the per-shard client for direct inspection.
func (mc *MultiClient) ShardClient(name string) *Client {
	mc.mu.RLock()
	defer mc.mu.RUnlock()
	return mc.clients[name]
}

// view snapshots the routing state for one call.
func (mc *MultiClient) view() view {
	mc.mu.RLock()
	defer mc.mu.RUnlock()
	return view{m: mc.m, clients: mc.clients}
}

// SetTopologySource enables live routing: url is the base address of a
// vmgate whose GET /v1/topology is authoritative. From then on requests
// are stamped with the map's epoch and stale_epoch refusals trigger a
// refresh-and-retry instead of a failure. Call before starting the
// workload.
func (mc *MultiClient) SetTopologySource(url string) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	mc.source = strings.TrimRight(url, "/")
	if e := mc.m.Epoch(); e > 0 {
		for _, c := range mc.clients {
			c.SetEpoch(e)
		}
	}
}

// sourceURL reads the topology source under the lock.
func (mc *MultiClient) sourceURL() string {
	mc.mu.RLock()
	defer mc.mu.RUnlock()
	return mc.source
}

// Refreshed returns how many topology swaps the client has applied;
// Rerouted how many ops were retried after a stale_epoch refusal.
func (mc *MultiClient) Refreshed() int { return int(mc.refreshed.Load()) }
func (mc *MultiClient) Rerouted() int  { return int(mc.rerouted.Load()) }

// FetchTopology fetches a gate's current routing map from
// GET <base>/v1/topology — the bootstrap for driving shards directly
// without listing them by hand (vmload -topology-source).
func FetchTopology(ctx context.Context, base string) (*shard.Map, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(base, "/")+"/v1/topology", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("loadgen: fetch topology: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("loadgen: fetch topology: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("loadgen: fetch topology: %w", api.DecodeError(resp.StatusCode, data))
	}
	var tr api.TopologyResponse
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("loadgen: fetch topology: %w", err)
	}
	m, err := shard.FromTopology(api.Topology{Epoch: tr.Epoch, Shards: tr.Shards})
	if err != nil {
		return nil, fmt.Errorf("loadgen: fetch topology: %w", err)
	}
	return m, nil
}

// RefreshTopology fetches the source's current topology and, if its
// epoch is newer than the routing map's, swaps map and clients —
// reusing the per-shard client (and its retry counters, issued-ID set,
// connection pool) for every shard whose name and address survive the
// resize. Returns whether the map changed. A no-op without a source.
func (mc *MultiClient) RefreshTopology(ctx context.Context) (bool, error) {
	mc.mu.RLock()
	source := mc.source
	cur := mc.m.Epoch()
	mc.mu.RUnlock()
	if source == "" {
		return false, nil
	}
	next, err := FetchTopology(ctx, source)
	if err != nil {
		return false, fmt.Errorf("loadgen: topology refresh: %w", err)
	}
	if next.Epoch() <= cur {
		return false, nil
	}

	mc.mu.Lock()
	defer mc.mu.Unlock()
	if next.Epoch() <= mc.m.Epoch() { // lost a refresh race to a newer swap
		return false, nil
	}
	clients := make(map[string]*Client, next.Len())
	for _, s := range next.Shards() {
		if c, ok := mc.clients[s.Name]; ok && c.Base == strings.TrimRight(s.Addr, "/") {
			clients[s.Name] = c
		} else {
			clients[s.Name] = mc.newShardClient(s)
		}
	}
	for _, c := range clients {
		c.SetEpoch(next.Epoch())
	}
	mc.m, mc.clients = next, clients
	mc.refreshed.Add(1)
	return true, nil
}

// staleEpoch reports whether err is (or wraps) a shard's 409
// stale_epoch refusal.
func staleEpoch(err error) bool {
	var apiErr *api.Error
	return errors.As(err, &apiErr) && apiErr.Envelope.Code == api.CodeStaleEpoch
}

// reroute retries op once after refreshing the topology, if err was a
// stale_epoch refusal and a source is configured. The shard fenced the
// request because the routing map is superseded — the op did not
// execute, so the retry against the new owner is safe and the original
// attempt is not an op failure.
func reroute[T any](mc *MultiClient, ctx context.Context, err error, op func() (T, error)) (T, error) {
	var zero T
	if !staleEpoch(err) || mc.sourceURL() == "" {
		return zero, err
	}
	if _, rerr := mc.RefreshTopology(ctx); rerr != nil {
		return zero, fmt.Errorf("%w (topology refresh also failed: %v)", err, rerr)
	}
	mc.rerouted.Add(1)
	return op()
}

// Admit splits the batch by owning shard, issues the sub-batches
// concurrently, and reassembles the outcomes in request order. Every
// request must carry an explicit VM ID (the routing key); the
// generated schedules always do.
func (mc *MultiClient) Admit(ctx context.Context, reqs []api.AdmitRequest) ([]api.AdmitResponse, error) {
	out, err := mc.admitOnce(ctx, reqs)
	if err != nil {
		return reroute(mc, ctx, err, func() ([]api.AdmitResponse, error) {
			return mc.admitOnce(ctx, reqs)
		})
	}
	return out, nil
}

func (mc *MultiClient) admitOnce(ctx context.Context, reqs []api.AdmitRequest) ([]api.AdmitResponse, error) {
	v := mc.view()
	groups := make(map[string][]int)
	for i, req := range reqs {
		if req.ID <= 0 {
			return nil, fmt.Errorf("loadgen: admission %d has no vm id (multi-target routing needs one)", i)
		}
		name := v.m.Assign(req.ID).Name
		groups[name] = append(groups[name], i)
	}
	out := make([]api.AdmitResponse, len(reqs))
	var wg sync.WaitGroup
	errs := make(map[string]error, len(groups))
	var mu sync.Mutex
	for name, idxs := range groups {
		sub := make([]api.AdmitRequest, len(idxs))
		for j, i := range idxs {
			sub[j] = reqs[i]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			adms, err := v.clients[name].Admit(ctx, sub)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[name] = err
				return
			}
			for j, i := range idxs {
				out[i] = adms[j]
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		names := make([]string, 0, len(errs))
		for n := range errs {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("loadgen: admit on shard %s: %w", names[0], errs[names[0]])
	}
	return out, nil
}

// Release routes the release to the shard owning the ID.
func (mc *MultiClient) Release(ctx context.Context, id int) (bool, error) {
	v := mc.view()
	ok, err := v.clients[v.m.Assign(id).Name].Release(ctx, id)
	if err != nil {
		return reroute(mc, ctx, err, func() (bool, error) {
			v := mc.view()
			return v.clients[v.m.Assign(id).Name].Release(ctx, id)
		})
	}
	return ok, nil
}

// AdvanceClock fans the advance out to every shard and returns the
// slowest resulting clock. Shard clocks are monotonic, so replaying an
// advance is a no-op and a partially failed fan-out is safe to retry.
func (mc *MultiClient) AdvanceClock(ctx context.Context, now int) (int, error) {
	n, err := mc.advanceClockOnce(ctx, now)
	if err != nil {
		return reroute(mc, ctx, err, func() (int, error) {
			return mc.advanceClockOnce(ctx, now)
		})
	}
	return n, nil
}

func (mc *MultiClient) advanceClockOnce(ctx context.Context, now int) (int, error) {
	type result struct {
		now int
		err error
	}
	v := mc.view()
	results := scatter(v, func(c *Client) result {
		n, err := c.AdvanceClock(ctx, now)
		return result{now: n, err: err}
	})
	minNow := 0
	for i, res := range results {
		if res.err != nil {
			return 0, fmt.Errorf("loadgen: clock on shard %s: %w", v.m.Shards()[i].Name, res.err)
		}
		if i == 0 || res.now < minNow {
			minNow = res.now
		}
	}
	return minNow, nil
}

// MigrateVM routes the manual migration to the shard owning the VM ID
// and stamps the owning shard on the returned record, mirroring what a
// vmgate would serve.
func (mc *MultiClient) MigrateVM(ctx context.Context, vm, server int) (api.MigrationRecord, error) {
	rec, err := mc.migrateOnce(ctx, vm, server)
	if err != nil {
		return reroute(mc, ctx, err, func() (api.MigrationRecord, error) {
			return mc.migrateOnce(ctx, vm, server)
		})
	}
	return rec, nil
}

func (mc *MultiClient) migrateOnce(ctx context.Context, vm, server int) (api.MigrationRecord, error) {
	v := mc.view()
	name := v.m.Assign(vm).Name
	rec, err := v.clients[name].MigrateVM(ctx, vm, server)
	if err != nil {
		return api.MigrationRecord{}, err
	}
	rec.Shard = name
	return rec, nil
}

// Consolidate fans one pass out to every shard and merges the outcomes
// the way a vmgate does: summed donors/moves/savings, the slowest
// shard's clock, the concatenated shard-stamped move list in
// (time, shard, seq) order.
func (mc *MultiClient) Consolidate(ctx context.Context, req api.ConsolidateRequest) (*api.ConsolidateResponse, error) {
	type result struct {
		cr  *api.ConsolidateResponse
		err error
	}
	v := mc.view()
	results := scatter(v, func(c *Client) result {
		cr, err := c.Consolidate(ctx, req)
		return result{cr: cr, err: err}
	})
	out := &api.ConsolidateResponse{Moves: []api.MigrationRecord{}}
	for i, res := range results {
		name := v.m.Shards()[i].Name
		if res.err != nil {
			return nil, fmt.Errorf("loadgen: consolidate on shard %s: %w", name, res.err)
		}
		if i == 0 {
			out.Clock = res.cr.Clock
			out.Policy = res.cr.Policy
		}
		if res.cr.Clock < out.Clock {
			out.Clock = res.cr.Clock
		}
		out.Donors += res.cr.Donors
		out.Executed += res.cr.Executed
		out.EnergySavedWattMinutes += res.cr.EnergySavedWattMinutes
		for _, m := range res.cr.Moves {
			m.Shard = name
			out.Moves = append(out.Moves, m)
		}
	}
	sortMigrations(out.Moves)
	return out, nil
}

// Migrations merges every shard's history, shard-stamped and ordered by
// (time, shard, seq); a limit= in the query trims the merged list to
// its newest entries, as a vmgate would.
func (mc *MultiClient) Migrations(ctx context.Context, query string) (*api.MigrationsResponse, error) {
	type result struct {
		mr  *api.MigrationsResponse
		err error
	}
	v := mc.view()
	results := scatter(v, func(c *Client) result {
		mr, err := c.Migrations(ctx, query)
		return result{mr: mr, err: err}
	})
	out := &api.MigrationsResponse{Migrations: []api.MigrationRecord{}}
	for i, res := range results {
		name := v.m.Shards()[i].Name
		if res.err != nil {
			return nil, fmt.Errorf("loadgen: migrations on shard %s: %w", name, res.err)
		}
		out.Count += res.mr.Count
		for _, m := range res.mr.Migrations {
			m.Shard = name
			out.Migrations = append(out.Migrations, m)
		}
	}
	sortMigrations(out.Migrations)
	if vals, err := url.ParseQuery(query); err == nil {
		if n, err := strconv.Atoi(vals.Get("limit")); err == nil && n > 0 && len(out.Migrations) > n {
			out.Migrations = out.Migrations[len(out.Migrations)-n:]
		}
	}
	return out, nil
}

// Policies merges every shard's arena readout the way a vmgate does:
// challenger reports shard-stamped and ordered by (name, shard),
// champion energy and arena counters summed, the slowest shard's clock,
// distinct champion names joined with ", ".
func (mc *MultiClient) Policies(ctx context.Context) (*api.PoliciesResponse, error) {
	type result struct {
		pr  *api.PoliciesResponse
		err error
	}
	v := mc.view()
	results := scatter(v, func(c *Client) result {
		pr, err := c.Policies(ctx)
		return result{pr: pr, err: err}
	})
	out := &api.PoliciesResponse{Policies: []api.PolicyReport{}}
	var champions []string
	for i, res := range results {
		name := v.m.Shards()[i].Name
		if res.err != nil {
			return nil, fmt.Errorf("loadgen: policies on shard %s: %w", name, res.err)
		}
		seen := false
		for _, ch := range champions {
			if ch == res.pr.Champion {
				seen = true
				break
			}
		}
		if !seen {
			champions = append(champions, res.pr.Champion)
		}
		if i == 0 || res.pr.Now < out.Now {
			out.Now = res.pr.Now
		}
		out.ChampionEnergyWattMinutes += res.pr.ChampionEnergyWattMinutes
		out.EvaluatedBatches += res.pr.EvaluatedBatches
		out.DroppedEvents += res.pr.DroppedEvents
		for _, p := range res.pr.Policies {
			p.Shard = name
			out.Policies = append(out.Policies, p)
		}
	}
	out.Champion = strings.Join(champions, ", ")
	sort.Slice(out.Policies, func(a, b int) bool {
		if out.Policies[a].Name != out.Policies[b].Name {
			return out.Policies[a].Name < out.Policies[b].Name
		}
		return out.Policies[a].Shard < out.Policies[b].Shard
	})
	out.Count = len(out.Policies)
	return out, nil
}

// DebugTraces merges every shard's span buffer and regroups the spans
// into one tree per trace id, the way a vmgate's /v1/debug/traces does
// (minus the gate-side spans — there is no gate in this topology). A
// shard that fails the fetch fails the call; the runner treats the
// whole readout as best-effort.
func (mc *MultiClient) DebugTraces(ctx context.Context, query string) (*api.TracesResponse, error) {
	type result struct {
		tr  *api.TracesResponse
		err error
	}
	v := mc.view()
	results := scatter(v, func(c *Client) result {
		tr, err := c.DebugTraces(ctx, query)
		return result{tr: tr, err: err}
	})
	var all []obs.Span
	for i, res := range results {
		if res.err != nil {
			return nil, fmt.Errorf("loadgen: traces on shard %s: %w", v.m.Shards()[i].Name, res.err)
		}
		for _, t := range res.tr.Traces {
			all = append(all, t.Spans...)
		}
	}
	traces := api.GroupSpans(all)
	if traces == nil {
		traces = []api.Trace{}
	}
	spans := 0
	for i := range traces {
		spans += len(traces[i].Spans)
	}
	return &api.TracesResponse{Count: len(traces), Spans: spans, Traces: traces}, nil
}

// sortMigrations orders a merged record list deterministically: by
// fleet minute, then owning shard, then journal sequence.
func sortMigrations(ms []api.MigrationRecord) {
	sort.SliceStable(ms, func(a, b int) bool {
		if ms[a].Time != ms[b].Time {
			return ms[a].Time < ms[b].Time
		}
		if ms[a].Shard != ms[b].Shard {
			return ms[a].Shard < ms[b].Shard
		}
		return ms[a].Seq < ms[b].Seq
	})
}

// StateSummary aggregates every shard's summary; the digest is the
// combined per-shard digest, equal to what a vmgate over the same
// shards would serve.
func (mc *MultiClient) StateSummary(ctx context.Context) (StateSummary, error) {
	type result struct {
		sum StateSummary
		err error
	}
	v := mc.view()
	results := scatter(v, func(c *Client) result {
		sum, err := c.StateSummary(ctx)
		return result{sum: sum, err: err}
	})
	var out StateSummary
	digests := make(map[string]string, len(results))
	for i, res := range results {
		name := v.m.Shards()[i].Name
		if res.err != nil {
			return StateSummary{}, fmt.Errorf("loadgen: state on shard %s: %w", name, res.err)
		}
		if i == 0 || res.sum.Now < out.Now {
			out.Now = res.sum.Now
		}
		out.Residents += res.sum.Residents
		out.TotalEnergy += res.sum.TotalEnergy
		digests[name] = res.sum.Digest
	}
	out.Digest = shard.CombineDigests(digests)
	return out, nil
}

// Metrics scrapes every shard and sums series point-wise — meaningful
// for the counter deltas the report prints (admissions, rejections,
// releases across the deployment).
func (mc *MultiClient) Metrics(ctx context.Context) (Metrics, error) {
	type result struct {
		m   Metrics
		err error
	}
	v := mc.view()
	results := scatter(v, func(c *Client) result {
		m, err := c.Metrics(ctx)
		return result{m: m, err: err}
	})
	sum := make(Metrics)
	for i, res := range results {
		if res.err != nil {
			return nil, fmt.Errorf("loadgen: metrics on shard %s: %w", v.m.Shards()[i].Name, res.err)
		}
		for k, v := range res.m {
			sum[k] += v
		}
	}
	return sum, nil
}

// Retried sums retry attempts across the per-shard clients.
func (mc *MultiClient) Retried() int {
	v := mc.view()
	total := 0
	for _, c := range v.clients {
		total += c.Retried()
	}
	return total
}

// WaitReady waits until every shard answers /healthz.
func (mc *MultiClient) WaitReady(ctx context.Context, d time.Duration) error {
	type result struct{ err error }
	v := mc.view()
	results := scatter(v, func(c *Client) result {
		return result{err: c.WaitReady(ctx, d)}
	})
	for i, res := range results {
		if res.err != nil {
			return fmt.Errorf("loadgen: shard %s: %w", v.m.Shards()[i].Name, res.err)
		}
	}
	return nil
}

// scatter runs fn against every shard's client concurrently, results in
// configuration order. It operates on one view so a concurrent
// topology swap cannot misalign results with shard names. (A free
// function because methods cannot be generic.)
func scatter[T any](v view, fn func(*Client) T) []T {
	shards := v.m.Shards()
	results := make([]T, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = fn(v.clients[s.Name])
		}()
	}
	wg.Wait()
	return results
}
