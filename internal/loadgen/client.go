package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vmalloc/internal/api"
	"vmalloc/internal/obs"
)

// Client is a typed HTTP client for the vmserve API
// (internal/clusterhttp): POST/DELETE /v1/vms, POST /v1/clock,
// GET /v1/state, /healthz and /metrics, with a per-attempt timeout and
// bounded exponential-backoff retries on transport errors and 5xx
// responses.
//
// Admission retries are safe because every generated request carries an
// explicit VM ID — the ID doubles as an idempotency key: if the first
// attempt landed but its response was lost, the retry comes back as an
// "already resident" rejection, which the client folds back into an
// accepted outcome.
//
// Every mutating call is stamped with a fresh X-Request-Id, reused
// verbatim across its retries, so a soak failure is traceable end to end:
// the server's flight recorder (GET /v1/debug/decisions) shows the same
// id the client issued.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
	// Timeout bounds each attempt; 0 means 10s.
	Timeout time.Duration
	// Retries is how many times a failed attempt is retried; 0 means 2.
	// Negative disables retries.
	Retries int
	// Backoff is the first retry delay, doubling per retry; 0 means
	// 50ms.
	Backoff time.Duration
	// RecordRequestIDs makes the client remember every request id it
	// issues (IssuedRequestIDs), so harnesses can cross-check the
	// server's flight recorder against what was actually sent. Off by
	// default to keep long soaks from accumulating memory.
	RecordRequestIDs bool

	// retried counts attempts beyond the first; read via Retried. Atomic:
	// the runner's worker pool shares one client.
	retried atomic.Int64

	// epoch, when > 0, is stamped on every request as the topology epoch
	// header; shards refuse stamps below their high-water mark with 409
	// stale_epoch, which is how a client routing on a superseded map
	// finds out. Atomic: a MultiClient refresh updates it while the
	// worker pool keeps sending.
	epoch atomic.Int64

	idMu   sync.Mutex
	issued []string
}

// NewClient returns a client for the server rooted at base with the
// default timeout/retry/backoff policy.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 10 * time.Second
}

func (c *Client) retries() int {
	switch {
	case c.Retries < 0:
		return 0
	case c.Retries == 0:
		return 2
	}
	return c.Retries
}

func (c *Client) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return 50 * time.Millisecond
}

// Retried returns how many retry attempts the client has issued.
func (c *Client) Retried() int { return int(c.retried.Load()) }

// SetEpoch sets the topology epoch stamped on subsequent requests
// (0 disables stamping — the unversioned, single-target mode).
func (c *Client) SetEpoch(epoch int64) { c.epoch.Store(epoch) }

// Epoch returns the topology epoch currently stamped on requests.
func (c *Client) Epoch() int64 { return c.epoch.Load() }

// stampEpoch adds the topology epoch header when one is set.
func (c *Client) stampEpoch(req *http.Request) {
	if e := c.epoch.Load(); e > 0 {
		req.Header.Set(api.EpochHeader, strconv.FormatInt(e, 10))
	}
}

// newRequestID mints the id for one logical call (shared by its
// retries) and remembers it when RecordRequestIDs is set.
func (c *Client) newRequestID() string {
	id := obs.NewRequestID()
	if c.RecordRequestIDs {
		c.idMu.Lock()
		c.issued = append(c.issued, id)
		c.idMu.Unlock()
	}
	return id
}

// IssuedRequestIDs returns a copy of every request id issued so far
// (empty unless RecordRequestIDs is set).
func (c *Client) IssuedRequestIDs() []string {
	c.idMu.Lock()
	defer c.idMu.Unlock()
	out := make([]string, len(c.issued))
	copy(out, c.issued)
	return out
}

// retryable reports whether another attempt could change the outcome:
// transport errors (connection refused/reset, timeouts) and 5xx
// responses; 4xx outcomes are deterministic and final.
func retryable(err error) bool {
	var ae *api.Error
	if errors.As(err, &ae) {
		return ae.Status >= 500
	}
	return err != nil
}

// do issues one method+path request with the retry policy, decoding a
// 2xx JSON body into out (unless out is nil). body is re-sent on every
// attempt, and every attempt carries the same freshly minted request id.
// The returned bool reports whether this call went beyond its first
// attempt (callers use it for the admission idempotency fold).
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) (bool, error) {
	reqID := c.newRequestID()
	// One root trace per logical call: retries share the trace id, so a
	// retried admission's attempts stitch into one tree server-side.
	root := obs.NewTraceContext()
	var lastErr error
	delay := c.backoff()
	for attempt := 0; attempt <= c.retries(); attempt++ {
		if attempt > 0 {
			c.retried.Add(1)
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return attempt > 1, ctx.Err()
			}
			delay *= 2
		}
		lastErr = c.attempt(ctx, method, path, reqID, root, body, out)
		if lastErr == nil || !retryable(lastErr) || ctx.Err() != nil {
			return attempt > 0, lastErr
		}
	}
	return true, lastErr
}

func (c *Client) attempt(ctx context.Context, method, path, reqID string, root obs.TraceContext, body []byte, out any) error {
	actx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if reqID != "" {
		req.Header.Set(obs.RequestIDHeader, reqID)
	}
	if root.Valid() {
		req.Header.Set(obs.TraceParentHeader, root.Header())
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.stampEpoch(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return api.DecodeError(resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Admit submits a batch of admission requests and returns the per-request
// outcomes in request order. A retried batch whose first attempt landed
// reports its requests as accepted via the idempotency fold (see Client).
func (c *Client) Admit(ctx context.Context, reqs []api.AdmitRequest) ([]api.AdmitResponse, error) {
	body, err := json.Marshal(reqs)
	if err != nil {
		return nil, err
	}
	var adms []api.AdmitResponse
	retried, err := c.do(ctx, http.MethodPost, "/v1/vms", body, &adms)
	if err != nil {
		return nil, err
	}
	if len(adms) != len(reqs) {
		return nil, fmt.Errorf("loadgen: %d admissions for %d requests", len(adms), len(reqs))
	}
	if retried {
		// At least one attempt was retried: an "already resident"
		// rejection here means the earlier attempt admitted the VM and
		// only the response was lost.
		for i := range adms {
			if !adms[i].Accepted && strings.Contains(adms[i].Reason, "already resident") {
				adms[i].Accepted = true
				adms[i].Reason = "admitted by an earlier attempt (idempotent retry)"
			}
		}
	}
	return adms, nil
}

// Release removes a resident VM. released is false when the server does
// not know the VM (404) — already departed, already released, or never
// admitted. A 404 on a retried call counts as released: the first
// attempt landed and only its response was lost (the idempotency fold,
// as in Admit).
func (c *Client) Release(ctx context.Context, id int) (released bool, err error) {
	retried, err := c.do(ctx, http.MethodDelete, fmt.Sprintf("/v1/vms/%d", id), nil, nil)
	var ae *api.Error
	if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
		return retried, nil
	}
	return err == nil, err
}

// AdvanceClock moves the fleet clock to minute now (earlier minutes are a
// server-side no-op) and returns the resulting clock.
func (c *Client) AdvanceClock(ctx context.Context, now int) (int, error) {
	body, err := json.Marshal(api.ClockRequest{Now: &now})
	if err != nil {
		return 0, err
	}
	var resp api.ClockResponse
	if _, err := c.do(ctx, http.MethodPost, "/v1/clock", body, &resp); err != nil {
		return 0, err
	}
	return resp.Now, nil
}

// MigrateVM moves a resident VM onto the named server
// (POST /v1/migrations) and returns the journaled migration record.
// Retry-safe in the Admit sense: a retried call whose first attempt
// landed comes back 409 migration_infeasible ("already on the target"),
// which distinguishes it from a genuinely infeasible move only by the
// retry — so that fold is left to the caller, who knows the intent.
func (c *Client) MigrateVM(ctx context.Context, vm, server int) (api.MigrationRecord, error) {
	body, err := json.Marshal(api.MigrateRequest{VM: vm, Server: &server})
	if err != nil {
		return api.MigrationRecord{}, err
	}
	var rec api.MigrationRecord
	if _, err := c.do(ctx, http.MethodPost, "/v1/migrations", body, &rec); err != nil {
		return api.MigrationRecord{}, err
	}
	return rec, nil
}

// Consolidate runs one consolidation pass (POST /v1/consolidate).
// Idempotent by the pay-for-itself rule: a pass that already drained
// everything profitable leaves nothing for a replayed pass to move, so
// retries are safe — except a 409 consolidation_busy, which means a
// pass (possibly this call's first attempt) is still running and is
// returned as the error for the caller to back off on.
func (c *Client) Consolidate(ctx context.Context, req api.ConsolidateRequest) (*api.ConsolidateResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp := new(api.ConsolidateResponse)
	if _, err := c.do(ctx, http.MethodPost, "/v1/consolidate", body, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Migrations fetches the migration history (GET /v1/migrations). query
// is a raw query string such as "vm=7&limit=10", or "" for the full
// retained history.
func (c *Client) Migrations(ctx context.Context, query string) (*api.MigrationsResponse, error) {
	path := "/v1/migrations"
	if query != "" {
		path += "?" + query
	}
	resp := new(api.MigrationsResponse)
	if _, err := c.do(ctx, http.MethodGet, path, nil, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Policies fetches the shadow-policy arena readout (GET /v1/policies):
// per-challenger counterfactual divergence, rejection and energy
// figures. Works against a vmserve and a vmgate alike — the gate serves
// the merged, shard-stamped shape on the same path.
func (c *Client) Policies(ctx context.Context) (*api.PoliciesResponse, error) {
	resp := new(api.PoliciesResponse)
	if _, err := c.do(ctx, http.MethodGet, "/v1/policies", nil, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// State fetches the consistent cluster state and its digest (the
// X-Vmalloc-State-Digest header, equal to api.DigestBytes over the
// body). Only meaningful against a single vmserve; a vmgate serves an
// aggregated shape — use StateSummary for code that must work against
// both.
func (c *Client) State(ctx context.Context) (*api.StateResponse, string, error) {
	data, digest, err := c.rawState(ctx)
	if err != nil {
		return nil, "", err
	}
	st := new(api.StateResponse)
	if err := json.Unmarshal(data, st); err != nil {
		return nil, "", err
	}
	return st, digest, nil
}

// GateState fetches a vmgate's aggregated state: every shard's state
// plus the combined digest.
func (c *Client) GateState(ctx context.Context) (*api.GateStateResponse, string, error) {
	data, digest, err := c.rawState(ctx)
	if err != nil {
		return nil, "", err
	}
	st := new(api.GateStateResponse)
	if err := json.Unmarshal(data, st); err != nil {
		return nil, "", err
	}
	return st, digest, nil
}

func (c *Client) rawState(ctx context.Context) ([]byte, string, error) {
	actx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, c.Base+"/v1/state", nil)
	if err != nil {
		return nil, "", err
	}
	c.stampEpoch(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", api.DecodeError(resp.StatusCode, data)
	}
	digest := resp.Header.Get(api.StateDigestHeader)
	if digest == "" {
		digest = api.DigestBytes(data)
	}
	return data, digest, nil
}

// StateSummary fetches the few cross-cutting facts the runner reports
// on, from either topology: a vmserve's api.StateResponse (residents
// counted from its vms array) or a vmgate's api.GateStateResponse
// (which carries an explicit residents field). The probe decode reads
// only the shared field names, so it does not care which it hit.
func (c *Client) StateSummary(ctx context.Context) (StateSummary, error) {
	data, digest, err := c.rawState(ctx)
	if err != nil {
		return StateSummary{}, err
	}
	var probe struct {
		Now         int               `json:"now"`
		Residents   *int              `json:"residents"`
		TotalEnergy float64           `json:"totalEnergyWattMinutes"`
		VMs         []json.RawMessage `json:"vms"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return StateSummary{}, err
	}
	residents := len(probe.VMs)
	if probe.Residents != nil {
		residents = *probe.Residents
	}
	return StateSummary{
		Now:         probe.Now,
		Residents:   residents,
		TotalEnergy: probe.TotalEnergy,
		Digest:      digest,
	}, nil
}

// DebugDecisions fetches the server's flight recorder
// (GET /v1/debug/decisions). query is a raw query string such as
// "vm=7&limit=10", or "" for everything the recorder holds.
func (c *Client) DebugDecisions(ctx context.Context, query string) ([]obs.Decision, error) {
	path := "/v1/debug/decisions"
	if query != "" {
		path += "?" + query
	}
	var resp api.DecisionsResponse
	if _, err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Decisions, nil
}

// DebugTraces fetches the server's span store (GET /v1/debug/traces),
// grouped into one tree per trace id. query is a raw query string such
// as "name=fsync&limit=100", or "" for everything buffered.
func (c *Client) DebugTraces(ctx context.Context, query string) (*api.TracesResponse, error) {
	path := "/v1/debug/traces"
	if query != "" {
		path += "?" + query
	}
	var resp api.TracesResponse
	if _, err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// DebugEnergy fetches the server's sampled energy/utilization series
// (GET /v1/debug/energy). query is a raw query string such as
// "since=120&limit=50", or "" for the whole window.
func (c *Client) DebugEnergy(ctx context.Context, query string) (*api.EnergyResponse, error) {
	path := "/v1/debug/energy"
	if query != "" {
		path += "?" + query
	}
	var resp api.EnergyResponse
	if _, err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics scrapes and parses /metrics.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	actx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, api.DecodeError(resp.StatusCode, nil)
	}
	return ParseMetrics(resp.Body)
}

// WaitReady polls /healthz until the server answers 200, the context
// ends, or the deadline d passes.
func (c *Client) WaitReady(ctx context.Context, d time.Duration) error {
	deadline := time.Now().Add(d)
	var lastErr error
	for {
		actx, cancel := context.WithTimeout(ctx, time.Second)
		req, err := http.NewRequestWithContext(actx, http.MethodGet, c.Base+"/healthz", nil)
		if err != nil {
			cancel()
			return err
		}
		resp, err := c.httpClient().Do(req)
		cancel()
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = api.DecodeError(resp.StatusCode, nil)
		}
		lastErr = err
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: %s not ready after %s: %w", c.Base, d, lastErr)
		}
		select {
		case <-time.After(20 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
