package loadgen

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vmalloc/internal/cluster"
	"vmalloc/internal/clusterhttp"
	"vmalloc/internal/model"
	"vmalloc/internal/trace"
)

func traceVM(id int, cpu float64, start, end int) model.VM {
	return model.VM{ID: id, Demand: model.Resources{CPU: cpu, Mem: 1}, Start: start, End: end}
}

func TestTraceSchedule(t *testing.T) {
	// Sparse IDs, out-of-order minutes, two VMs sharing a start minute.
	sched, err := TraceSchedule([]model.VM{
		traceVM(70, 1, 5, 40),
		traceVM(3, 2, 1, 10),
		traceVM(12, 1, 5, 25),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sched.NumVMs != 3 || sched.MaxID != 70 || sched.Horizon != 40 || sched.NumReleases != 0 {
		t.Fatalf("schedule summary = %+v", sched)
	}
	if len(sched.Steps) != 2 || sched.Steps[0].Minute != 1 || sched.Steps[1].Minute != 5 {
		t.Fatalf("steps = %+v", sched.Steps)
	}
	adm := sched.Steps[1].Admits
	if len(adm) != 2 || adm[0].ID != 12 || adm[1].ID != 70 {
		t.Fatalf("minute-5 admits = %+v, want IDs 12 then 70", adm)
	}
	if adm[0].Start != 5 || adm[0].DurationMinutes != traceVM(12, 1, 5, 25).Duration() {
		t.Fatalf("admit %+v does not carry the trace lifetime", adm[0])
	}

	for _, tc := range []struct {
		name string
		vms  []model.VM
		want string
	}{
		{"empty", nil, "empty trace"},
		{"zero id", []model.VM{traceVM(0, 1, 1, 5)}, "want >= 1"},
		{"duplicate id", []model.VM{traceVM(4, 1, 1, 5), traceVM(4, 1, 2, 6)}, "appears twice"},
	} {
		if _, err := TraceSchedule(tc.vms); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestTraceReplayEndToEnd round-trips a trace through the runner: the
// CSV shape internal/trace writes replays against a live cluster, every
// VM is admitted at its start minute, and by the horizon the natural
// departures have drained the fleet.
func TestTraceReplayEndToEnd(t *testing.T) {
	vms := []model.VM{
		traceVM(10, 2, 1, 30),
		traceVM(200, 1, 1, 45),
		traceVM(35, 4, 12, 50),
		traceVM(7, 1, 20, 20),
	}
	var csv strings.Builder
	if err := trace.WriteCSV(&csv, vms); err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.ReadCSV(strings.NewReader(csv.String()))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := TraceSchedule(parsed)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := cluster.Open(cluster.Config{
		Servers:     testServers(4),
		IdleTimeout: 5,
		BatchWindow: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv := httptest.NewServer(clusterhttp.New(cl, clusterhttp.Config{}))
	defer srv.Close()

	r := &Runner{Client: NewClient(srv.URL), Schedule: sched, Opts: Options{Workers: 2}}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Accepted != len(vms) || rep.Rejected != 0 {
		t.Fatalf("report: %d errors, %d accepted, %d rejected", rep.Errors, rep.Accepted, rep.Rejected)
	}
	st := cl.State()
	if st.Now != sched.Horizon+1 {
		t.Fatalf("final clock %d, want the post-horizon drain tick %d", st.Now, sched.Horizon+1)
	}
	if rep.FinalResidents != 0 {
		t.Fatalf("%d residents at the horizon, want 0 (trace ends drain the fleet)", rep.FinalResidents)
	}
	if rep.OutcomeDigest == "" || rep.StateDigest == "" {
		t.Fatal("trace replay produced no digests")
	}
}
