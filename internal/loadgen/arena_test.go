package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"vmalloc/internal/arena"
	"vmalloc/internal/cluster"
	"vmalloc/internal/clusterhttp"
	"vmalloc/internal/online"
)

// TestArenaNeutrality is the shadow-arena acceptance harness: the same
// seeded diurnal schedule runs twice against fresh clusters — once with
// three shadow challengers attached, once with the arena off — and the
// two runs must be byte-identical in both outcome and state digests
// (the arena never touches the live placement path). Meanwhile the
// arena-on run must actually evaluate the traffic: every challenger
// scores every admission, and the "control" challenger — the same
// policy as the live champion — must reproduce the champion's decisions
// exactly, down to the float energy accumulation of its replica fleet.
// Run under -race; /v1/policies is polled concurrently with the load to
// exercise the reader paths.
func TestArenaNeutrality(t *testing.T) {
	spec := ScheduleSpec{
		Profile:         DiurnalProfile{MeanInterArrival: 0.3, PeakToTrough: 3, Period: 360},
		NumVMs:          500,
		MeanLength:      30,
		ReleaseFraction: 0.3,
		Seed:            20260807,
	}
	if testing.Short() {
		spec.NumVMs = 150
	}
	sched, err := BuildSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Arena-on run.
	ar := arena.New(arena.Config{
		Servers:     testServers(16),
		IdleTimeout: 5,
		// Large enough that nothing drops: the control-exactness check
		// below needs the full event stream.
		QueueSize: 1 << 15,
	})
	for _, c := range []struct {
		name   string
		policy online.Policy
	}{
		{"control", &online.MinCostPolicy{}}, // same policy as the live champion
		{"delay-aware", &online.DelayAwareMinCostPolicy{PenaltyPerMinute: 50}},
		{"ffps", online.NewFirstFitPolicy(7)},
	} {
		if err := ar.Register(c.name, c.policy); err != nil {
			t.Fatal(err)
		}
	}
	ar.Start()
	repOn, liveEnergy, liveNow := runArenaLoad(t, sched, ar)
	ar.Close() // drain every queued event before reading reports

	// Arena-off control run.
	repOff, _, _ := runArenaLoad(t, sched, nil)

	// Neutrality: digests byte-identical with and without the arena.
	if repOn.OutcomeDigest != repOff.OutcomeDigest {
		t.Fatalf("outcome digest changed with arena on:\non:  %s\noff: %s",
			repOn.OutcomeDigest, repOff.OutcomeDigest)
	}
	if repOn.StateDigest == "" || repOn.StateDigest != repOff.StateDigest {
		t.Fatalf("state digest changed with arena on:\non:  %s\noff: %s",
			repOn.StateDigest, repOff.StateDigest)
	}

	// The runner's report picked up the arena table over /v1/policies.
	if repOn.Champion != "online/mincost" {
		t.Fatalf("report champion = %q", repOn.Champion)
	}
	if repOn.ArenaBatches == 0 {
		t.Fatal("report shows zero evaluated batches")
	}
	if len(repOn.Policies) != 3 {
		t.Fatalf("report carries %d policy rows, want 3", len(repOn.Policies))
	}

	reports, stats := ar.Reports()
	if stats.Dropped != 0 {
		t.Fatalf("arena dropped %d events; size the queue up", stats.Dropped)
	}
	if stats.Batches == 0 || len(reports) != 3 {
		t.Fatalf("arena stats = %+v with %d reports", stats, len(reports))
	}
	var divergences uint64
	for _, r := range reports {
		if r.Decisions == 0 {
			t.Fatalf("challenger %s evaluated no admissions", r.Name)
		}
		if int(r.Decisions) != repOn.Sent {
			t.Fatalf("challenger %s judged %d admissions, runner sent %d", r.Name, r.Decisions, repOn.Sent)
		}
		if r.Clock != liveNow {
			t.Fatalf("challenger %s replica clock %d, live clock %d", r.Name, r.Clock, liveNow)
		}
		divergences += r.Divergences
	}
	if divergences == 0 {
		t.Fatal("no challenger ever diverged from the champion (ffps should)")
	}

	// The control challenger runs the champion's own policy on the same
	// event stream, so it must be a perfect counterfactual: zero
	// divergence, the champion's rejection count, and — because replica
	// and live fleet perform the identical operation sequence — exactly
	// the live fleet's float energy, not merely close to it.
	control := reports[0] // name-sorted: control < delay-aware < ffps
	if control.Name != "control" {
		t.Fatalf("report order: %v", []string{reports[0].Name, reports[1].Name, reports[2].Name})
	}
	if control.Divergences != 0 {
		t.Fatalf("control challenger diverged %d times from its own policy", control.Divergences)
	}
	if int(control.Rejections) != repOn.Rejected {
		t.Fatalf("control rejections %d, live rejected %d", control.Rejections, repOn.Rejected)
	}
	if control.ChampionRejections != control.Rejections {
		t.Fatalf("control saw %d champion rejections, made %d itself",
			control.ChampionRejections, control.Rejections)
	}
	if control.EnergyWattMinutes != liveEnergy {
		t.Fatalf("control counterfactual energy %g != live energy %g (want exact equality)",
			control.EnergyWattMinutes, liveEnergy)
	}
	t.Logf("arena: %d batches, control energy %.2f Wmin == live; divergences: delay-aware %d, ffps %d",
		stats.Batches, control.EnergyWattMinutes, reports[1].Divergences, reports[2].Divergences)
}

// runArenaLoad runs the schedule against a fresh volatile cluster (with
// ar attached when non-nil) and returns the report plus the live
// cluster's final energy and clock. /v1/policies is polled concurrently
// with the load for -race coverage of the arena's reader paths.
func runArenaLoad(t *testing.T, sched *Schedule, ar *arena.Arena) (*Report, float64, int) {
	t.Helper()
	cl, err := cluster.Open(cluster.Config{
		Servers:     testServers(16),
		IdleTimeout: 5,
		BatchWindow: 200 * time.Microsecond,
		Arena:       ar,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv := httptest.NewServer(clusterhttp.New(cl, clusterhttp.Config{}))
	defer srv.Close()

	readCtx, stopReads := context.WithCancel(context.Background())
	readsDone := make(chan struct{})
	go func() {
		defer close(readsDone)
		reader := NewClient(srv.URL)
		for readCtx.Err() == nil {
			if _, err := reader.Policies(readCtx); err != nil && readCtx.Err() == nil {
				t.Errorf("concurrent policies read: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	client := NewClient(srv.URL)
	r := &Runner{
		Client:   client,
		Schedule: sched,
		// No consolidation: migrations are live-only repairs the arena
		// does not forward, so the exact-energy control check requires a
		// migration-free run.
		Opts: Options{Workers: 4, Chunk: 0},
	}
	rep, err := r.Run(context.Background())
	stopReads()
	<-readsDone
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("run reported %d errors", rep.Errors)
	}
	st := cl.State()
	return rep, st.TotalEnergy, st.Now
}
