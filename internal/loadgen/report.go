package loadgen

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vmalloc/internal/api"
	"vmalloc/internal/obs"
)

// LatencySummary condenses one operation type's request latencies.
// Quantiles are exact (computed from the full sorted sample, not a
// sketch): the harness holds every sample in memory.
type LatencySummary struct {
	Count int           `json:"count"`
	Mean  time.Duration `json:"mean"`
	P50   time.Duration `json:"p50"`
	P95   time.Duration `json:"p95"`
	P99   time.Duration `json:"p99"`
	Max   time.Duration `json:"max"`
}

// summarize computes the summary; the input slice is sorted in place.
func summarize(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	q := func(p float64) time.Duration {
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	return LatencySummary{
		Count: len(samples),
		Mean:  sum / time.Duration(len(samples)),
		P50:   q(0.50),
		P95:   q(0.95),
		P99:   q(0.99),
		Max:   samples[len(samples)-1],
	}
}

func (l LatencySummary) String() string {
	if l.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		l.Count, l.Mean.Round(time.Microsecond), l.P50.Round(time.Microsecond),
		l.P95.Round(time.Microsecond), l.P99.Round(time.Microsecond), l.Max.Round(time.Microsecond))
}

// Report is the outcome of one load run.
type Report struct {
	Profile string `json:"profile"`
	Seed    int64  `json:"seed"`
	Steps   int    `json:"steps"`

	// Admission outcomes: Sent = Accepted + Rejected when Errors is 0.
	Sent     int `json:"sent"`
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	// Releases that removed a resident VM; ReleaseMisses answered 404.
	Releases      int `json:"releases"`
	ReleaseMisses int `json:"releaseMisses"`
	// ReleaseSkips are scheduled releases never issued because the VM's
	// admission was rejected.
	ReleaseSkips int `json:"releaseSkips"`
	// ClockTicks counts /v1/clock advances (steps plus the final drain).
	ClockTicks int `json:"clockTicks"`
	// Consolidations counts completed consolidation passes
	// (Options.ConsolidateEvery); Migrations sums their executed moves
	// and MigrationSaved their planner-side net savings in watt-minutes.
	Consolidations int     `json:"consolidations,omitempty"`
	Migrations     int     `json:"migrations,omitempty"`
	MigrationSaved float64 `json:"migrationSavedWattMinutes,omitempty"`
	// Errors counts operations that failed after every retry — transport
	// failures and 5xx responses. A healthy run reports 0.
	Errors int `json:"errors"`
	// Retries counts extra attempts the client issued.
	Retries int `json:"retries"`
	// BehindSteps counts steps that started later than their wall-clock
	// target by more than one pacing interval (the open-loop generator
	// fell behind and proceeded flat-out).
	BehindSteps int `json:"behindSteps"`

	Wall time.Duration `json:"wallNanos"`

	AdmitLatency   LatencySummary `json:"admitLatency"`
	ReleaseLatency LatencySummary `json:"releaseLatency"`
	ClockLatency   LatencySummary `json:"clockLatency"`

	// StageLatency summarizes server-side stage durations (queue wait,
	// scan, commit, fsync, ...) pulled from GET /v1/debug/traces after
	// the run, keyed by span name. Empty when the server runs without a
	// span store. These are per-span samples from the server's bounded
	// buffer, not per-request client latencies.
	StageLatency map[string]LatencySummary `json:"stageLatency,omitempty"`

	// OutcomeDigest is the hex SHA-256 of the ordered outcome log (every
	// admission's accepted bit in VM-ID order per step, every release's
	// outcome): equal digests mean identical admission/rejection
	// sequences. Runs with the same seed and spec against fresh servers
	// in the default step mode produce equal digests.
	OutcomeDigest string `json:"outcomeDigest"`

	// MetricsDelta is after − before for every /metrics series scraped
	// around the run (nil when scraping failed or was skipped).
	MetricsDelta Metrics `json:"metricsDelta,omitempty"`

	// FinalNow, FinalResidents, FinalEnergy and StateDigest summarise
	// GET /v1/state after the run.
	FinalNow       int     `json:"finalNow"`
	FinalResidents int     `json:"finalResidents"`
	FinalEnergy    float64 `json:"finalEnergyWattMinutes"`
	StateDigest    string  `json:"stateDigest"`

	// Champion, ArenaBatches, ArenaDropped and Policies summarise
	// GET /v1/policies after the run: the shadow arena's per-challenger
	// counterfactual scoreboard. All empty when the server runs no arena.
	Champion     string             `json:"champion,omitempty"`
	ArenaBatches uint64             `json:"arenaEvaluatedBatches,omitempty"`
	ArenaDropped uint64             `json:"arenaDroppedEvents,omitempty"`
	Policies     []api.PolicyReport `json:"policies,omitempty"`
}

// metricsDeltaKeys are the counter series the human-readable report
// surfaces; the JSON report carries the full delta map.
var metricsDeltaKeys = []string{
	"vmalloc_cluster_admissions_total",
	"vmalloc_cluster_rejections_total",
	"vmalloc_cluster_releases_total",
	"vmalloc_cluster_batches_total",
	"vmalloc_cluster_snapshots_total",
	"vmalloc_cluster_journal_errors_total",
	"vmalloc_cluster_scan_candidates_total",
	"vmalloc_cluster_migrations_total",
	"vmalloc_cluster_consolidations_total",
}

// stageOrder fixes the stage rows' print order to the request's journey
// through a shard: decode → queue wait → scan → commit → journal →
// fsync.
var stageOrder = []string{
	obs.SpanDecode, obs.SpanQueue, obs.SpanScan,
	obs.SpanCommit, obs.SpanJournal, obs.SpanSync,
}

// stageLatency buckets a trace readout's stage spans by name and
// summarizes each bucket. Spans outside stageOrder (route, fanout,
// migrate umbrellas, ...) are skipped: the report's stage table is
// about where a request's time goes inside a shard.
func stageLatency(tr *api.TracesResponse) map[string]LatencySummary {
	if tr == nil {
		return nil
	}
	wanted := make(map[string]bool, len(stageOrder))
	for _, name := range stageOrder {
		wanted[name] = true
	}
	byStage := make(map[string][]time.Duration)
	for _, t := range tr.Traces {
		for _, sp := range t.Spans {
			if wanted[sp.Name] {
				byStage[sp.Name] = append(byStage[sp.Name], sp.Duration)
			}
		}
	}
	if len(byStage) == 0 {
		return nil
	}
	out := make(map[string]LatencySummary, len(byStage))
	for name, samples := range byStage {
		out[name] = summarize(samples)
	}
	return out
}

// String renders the report as the vmload CLI's human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile %s seed %d: %d steps in %s\n", r.Profile, r.Seed, r.Steps, r.Wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "admissions: %d sent, %d accepted, %d rejected\n", r.Sent, r.Accepted, r.Rejected)
	fmt.Fprintf(&b, "releases:   %d ok, %d missed, %d skipped (vm never admitted)\n", r.Releases, r.ReleaseMisses, r.ReleaseSkips)
	fmt.Fprintf(&b, "clock:      %d ticks; errors %d, retries %d, behind-steps %d\n", r.ClockTicks, r.Errors, r.Retries, r.BehindSteps)
	if r.Consolidations > 0 {
		fmt.Fprintf(&b, "consolidation: %d passes, %d migrations, %.2f Wmin saved\n", r.Consolidations, r.Migrations, r.MigrationSaved)
	}
	fmt.Fprintf(&b, "latency admit:   %s\n", r.AdmitLatency)
	if r.ReleaseLatency.Count > 0 {
		fmt.Fprintf(&b, "latency release: %s\n", r.ReleaseLatency)
	}
	if r.ClockLatency.Count > 0 {
		fmt.Fprintf(&b, "latency clock:   %s\n", r.ClockLatency)
	}
	if len(r.StageLatency) > 0 {
		fmt.Fprintf(&b, "server stage spans (from /v1/debug/traces):\n")
		for _, name := range stageOrder {
			if s, ok := r.StageLatency[name]; ok {
				fmt.Fprintf(&b, "  %-8s %s\n", name, s)
			}
		}
	}
	if r.MetricsDelta != nil {
		fmt.Fprintf(&b, "server metrics delta:\n")
		for _, k := range metricsDeltaKeys {
			if v, ok := r.MetricsDelta[k]; ok {
				fmt.Fprintf(&b, "  %-42s %+g\n", k, v)
			}
		}
	}
	if len(r.Policies) > 0 {
		fmt.Fprintf(&b, "shadow arena: champion %s, %d batches evaluated, %d events dropped\n",
			r.Champion, r.ArenaBatches, r.ArenaDropped)
		for _, p := range r.Policies {
			name := p.Name
			if p.Shard != "" {
				name += "@" + p.Shard
			}
			fmt.Fprintf(&b, "  %-24s %-22s div %5.1f%% (%d/%d)  rej %+d  energy %+.1f Wmin\n",
				name, p.Policy, p.DivergencePct, p.Divergences, p.Decisions,
				p.RejectionDelta, p.EnergyDeltaWattMinutes)
		}
	}
	fmt.Fprintf(&b, "final state: now=%d residents=%d energy=%.1f Wmin\n", r.FinalNow, r.FinalResidents, r.FinalEnergy)
	fmt.Fprintf(&b, "outcome digest: %s\n", r.OutcomeDigest)
	if r.StateDigest != "" {
		fmt.Fprintf(&b, "state digest:   %s\n", r.StateDigest)
	}
	return b.String()
}
