package loadgen

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vmalloc/internal/cluster"
	"vmalloc/internal/clusterhttp"
	"vmalloc/internal/obs"
)

// TestTelemetryNeutrality is the tracing/energy acceptance harness: the
// same seeded schedule runs twice against fresh clusters — once with
// the span store and energy recorder wired, once with both off — and
// the outcome and state digests must be byte-identical (recording is
// passive; it never influences a placement). The telemetry-on run must
// meanwhile actually observe the traffic: the report's stage table is
// populated from /v1/debug/traces, and the sampled energy series
// integrates back to the reported total.
func TestTelemetryNeutrality(t *testing.T) {
	spec := ScheduleSpec{
		Profile:         DiurnalProfile{MeanInterArrival: 0.3, PeakToTrough: 3, Period: 360},
		NumVMs:          400,
		MeanLength:      30,
		ReleaseFraction: 0.3,
		Seed:            20260808,
	}
	if testing.Short() {
		spec.NumVMs = 120
	}
	sched, err := BuildSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}

	repOn, client := runTelemetryLoad(t, sched, true)
	repOff, _ := runTelemetryLoad(t, sched, false)

	if repOn.OutcomeDigest != repOff.OutcomeDigest {
		t.Fatalf("outcome digest changed with telemetry on:\non:  %s\noff: %s",
			repOn.OutcomeDigest, repOff.OutcomeDigest)
	}
	if repOn.StateDigest == "" || repOn.StateDigest != repOff.StateDigest {
		t.Fatalf("state digest changed with telemetry on:\non:  %s\noff: %s",
			repOn.StateDigest, repOff.StateDigest)
	}

	// The runner pulled per-stage latencies out of /v1/debug/traces; the
	// telemetry-off run has none.
	if len(repOff.StageLatency) != 0 {
		t.Fatalf("telemetry-off run reports stage latencies: %+v", repOff.StageLatency)
	}
	for _, stage := range []string{obs.SpanQueue, obs.SpanScan, obs.SpanCommit} {
		sum, ok := repOn.StageLatency[stage]
		if !ok || sum.Count == 0 || sum.P50 <= 0 || sum.P99 < sum.P50 {
			t.Fatalf("stage %s summary %+v", stage, sum)
		}
	}
	// No journal directory → no fsync stage in this run.
	if _, ok := repOn.StageLatency[obs.SpanSync]; ok {
		t.Fatal("volatile run reports fsync spans")
	}
	// The human-readable report prints the stage table (satellite: vmload
	// surfaces p50/p99 per stage after a run).
	text := repOn.String()
	if !strings.Contains(text, "server stage spans") || !strings.Contains(text, obs.SpanScan) {
		t.Fatalf("report text lacks the stage table:\n%s", text)
	}

	// Energy series: monotone, and integrating rate·Δclock reproduces
	// the ledger delta, which itself matches the report's final energy.
	er, err := client.DebugEnergy(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if er.Count < 10 {
		t.Fatalf("only %d energy samples after a full run", er.Count)
	}
	var integral float64
	for i := 1; i < len(er.Samples); i++ {
		if er.Samples[i].Clock <= er.Samples[i-1].Clock {
			t.Fatalf("non-monotone energy series at %d", i)
		}
		integral += er.Samples[i].RateWatts * float64(er.Samples[i].Clock-er.Samples[i-1].Clock) / 60
	}
	first, last := er.Samples[0], er.Samples[len(er.Samples)-1]
	want := last.TotalWattMinutes - first.TotalWattMinutes
	if math.Abs(integral-want) > 1e-6*math.Max(1, math.Abs(want)) {
		t.Fatalf("rate integral %g != ΔTotal %g", integral, want)
	}
	if last.TotalWattMinutes != repOn.FinalEnergy {
		t.Fatalf("newest sample total %g, report final energy %g", last.TotalWattMinutes, repOn.FinalEnergy)
	}
}

// runTelemetryLoad replays the schedule against a fresh volatile
// cluster, with or without the span store + energy recorder wired, and
// returns the report plus a client still pointed at the live server.
func runTelemetryLoad(t *testing.T, sched *Schedule, telemetry bool) (*Report, *Client) {
	t.Helper()
	ccfg := cluster.Config{
		Servers:     testServers(16),
		IdleTimeout: 5,
		BatchWindow: 200 * time.Microsecond,
	}
	hcfg := clusterhttp.Config{}
	if telemetry {
		ccfg.Spans = obs.NewSpanStore(1 << 16)
		ccfg.Energy = obs.NewEnergyRecorder(1 << 12)
		hcfg.Spans = ccfg.Spans
		hcfg.Energy = ccfg.Energy
	}
	cl, err := cluster.Open(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	srv := httptest.NewServer(clusterhttp.New(cl, hcfg))
	t.Cleanup(srv.Close)

	client := NewClient(srv.URL)
	r := &Runner{
		Client:   client,
		Schedule: sched,
		Opts:     Options{Workers: 4, Chunk: 0},
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("run reported %d errors", rep.Errors)
	}
	return rep, client
}
