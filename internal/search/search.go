// Package search improves completed placements by local search: starting
// from any feasible placement (typically the MinCost heuristic's), it
// explores single-VM relocations and pairwise swaps, accepting moves that
// lower the exact Eq. 7 energy. It closes part of the gap between the
// paper's greedy heuristic and the ILP optimum at a cost the greedy pass
// avoids — the offline counterpart of migration-based consolidation, with
// zero migration cost because nothing has run yet.
package search

import (
	"fmt"
	"math/rand"

	"vmalloc/internal/energy"
	"vmalloc/internal/model"
)

// Improver configures the local search.
type Improver struct {
	// Seed drives the randomised move order.
	Seed int64
	// MaxRounds caps full passes over the VM set; 0 means DefaultRounds.
	MaxRounds int
	// DisableSwaps restricts the neighbourhood to single relocations.
	DisableSwaps bool
}

// DefaultRounds bounds the search; each round is a full first-improvement
// sweep, and the search stops early once a sweep finds nothing.
const DefaultRounds = 20

// Stats reports the work done.
type Stats struct {
	Rounds      int     `json:"rounds"`
	Relocations int     `json:"relocations"`
	Swaps       int     `json:"swaps"`
	Start       float64 `json:"startEnergyWattMinutes"`
	Final       float64 `json:"finalEnergyWattMinutes"`
}

// Improved returns the fraction of the starting energy shaved off.
func (s Stats) Improved() float64 {
	if s.Start == 0 {
		return 0
	}
	return (s.Start - s.Final) / s.Start
}

type state struct {
	inst   model.Instance
	srvIdx map[int]int // server ID -> index
	perSrv [][]model.VM
	cost   []float64 // Eq. 17 energy of each server's VM set
	place  map[int]int
}

// Improve runs the search and returns the improved placement with its
// energy. The input placement is not modified; it must be feasible.
func (im *Improver) Improve(inst model.Instance, placement map[int]int) (map[int]int, float64, Stats, error) {
	if err := inst.Validate(); err != nil {
		return nil, 0, Stats{}, err
	}
	st, err := newState(inst, placement)
	if err != nil {
		return nil, 0, Stats{}, err
	}
	rounds := im.MaxRounds
	if rounds <= 0 {
		rounds = DefaultRounds
	}
	rng := rand.New(rand.NewSource(im.Seed))
	stats := Stats{Start: st.total()}
	order := make([]int, len(inst.VMs))
	for i := range order {
		order[i] = i
	}
	for round := 0; round < rounds; round++ {
		stats.Rounds++
		improved := false
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, vi := range order {
			v := inst.VMs[vi]
			if st.tryRelocate(v) {
				stats.Relocations++
				improved = true
				continue
			}
			if !im.DisableSwaps && st.trySwap(v, rng) {
				stats.Swaps++
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	stats.Final = st.total()
	return st.place, stats.Final, stats, nil
}

func newState(inst model.Instance, placement map[int]int) (*state, error) {
	st := &state{
		inst:   inst,
		srvIdx: make(map[int]int, len(inst.Servers)),
		perSrv: make([][]model.VM, len(inst.Servers)),
		cost:   make([]float64, len(inst.Servers)),
		place:  make(map[int]int, len(placement)),
	}
	for i, s := range inst.Servers {
		st.srvIdx[s.ID] = i
	}
	for _, v := range inst.VMs {
		sid, ok := placement[v.ID]
		if !ok {
			return nil, fmt.Errorf("search: vm %d is unplaced", v.ID)
		}
		i, ok := st.srvIdx[sid]
		if !ok {
			return nil, fmt.Errorf("search: vm %d on unknown server %d", v.ID, sid)
		}
		st.perSrv[i] = append(st.perSrv[i], v)
		st.place[v.ID] = sid
	}
	for i, s := range inst.Servers {
		st.cost[i] = energy.EvaluateServer(s, st.perSrv[i]).Total()
		if err := checkServer(s, st.perSrv[i]); err != nil {
			return nil, fmt.Errorf("search: input placement infeasible: %w", err)
		}
	}
	return st, nil
}

func (st *state) total() float64 {
	var sum float64
	for _, c := range st.cost {
		sum += c
	}
	return sum
}

// tryRelocate moves v to the best strictly-improving server, if any.
func (st *state) tryRelocate(v model.VM) bool {
	src := st.srvIdx[st.place[v.ID]]
	srcWithout := remove(st.perSrv[src], v.ID)
	srcNew := energy.EvaluateServer(st.inst.Servers[src], srcWithout).Total()
	bestDst, bestDelta, bestCost := -1, -1e-9, 0.0
	for dst := range st.inst.Servers {
		if dst == src {
			continue
		}
		s := st.inst.Servers[dst]
		if !fitsWith(s, st.perSrv[dst], v) {
			continue
		}
		dstNew := energy.EvaluateServer(s, append(st.perSrv[dst], v)).Total()
		delta := (srcNew + dstNew) - (st.cost[src] + st.cost[dst])
		if delta < bestDelta {
			bestDst, bestDelta, bestCost = dst, delta, dstNew
		}
	}
	if bestDst < 0 {
		return false
	}
	st.perSrv[src] = srcWithout
	st.cost[src] = srcNew
	st.perSrv[bestDst] = append(st.perSrv[bestDst], v)
	st.cost[bestDst] = bestCost
	st.place[v.ID] = st.inst.Servers[bestDst].ID
	return true
}

// trySwap exchanges v with one random co-schedulable VM on another server
// when the exchange strictly improves.
func (st *state) trySwap(v model.VM, rng *rand.Rand) bool {
	src := st.srvIdx[st.place[v.ID]]
	dst := rng.Intn(len(st.inst.Servers))
	if dst == src || len(st.perSrv[dst]) == 0 {
		return false
	}
	other := st.perSrv[dst][rng.Intn(len(st.perSrv[dst]))]
	srcS, dstS := st.inst.Servers[src], st.inst.Servers[dst]
	srcSwapped := append(remove(st.perSrv[src], v.ID), other)
	dstSwapped := append(remove(st.perSrv[dst], other.ID), v)
	if !feasible(srcS, srcSwapped) || !feasible(dstS, dstSwapped) {
		return false
	}
	srcNew := energy.EvaluateServer(srcS, srcSwapped).Total()
	dstNew := energy.EvaluateServer(dstS, dstSwapped).Total()
	if (srcNew+dstNew)-(st.cost[src]+st.cost[dst]) >= -1e-9 {
		return false
	}
	st.perSrv[src], st.cost[src] = srcSwapped, srcNew
	st.perSrv[dst], st.cost[dst] = dstSwapped, dstNew
	st.place[v.ID] = dstS.ID
	st.place[other.ID] = srcS.ID
	return true
}

func remove(vms []model.VM, id int) []model.VM {
	out := make([]model.VM, 0, len(vms)-1)
	for _, v := range vms {
		if v.ID != id {
			out = append(out, v)
		}
	}
	return out
}

// fitsWith reports whether v fits s alongside the placed VMs.
func fitsWith(s model.Server, placed []model.VM, v model.VM) bool {
	if !v.Demand.Fits(s.Capacity) {
		return false
	}
	for t := v.Start; t <= v.End; t++ {
		cpu, mem := v.Demand.CPU, v.Demand.Mem
		for _, p := range placed {
			if p.Start <= t && t <= p.End {
				cpu += p.Demand.CPU
				mem += p.Demand.Mem
			}
		}
		if cpu > s.Capacity.CPU+1e-9 || mem > s.Capacity.Mem+1e-9 {
			return false
		}
	}
	return true
}

// feasible reports whether the whole VM set fits the server.
func feasible(s model.Server, vms []model.VM) bool {
	return checkServer(s, vms) == nil
}

func checkServer(s model.Server, vms []model.VM) error {
	if len(vms) == 0 {
		return nil
	}
	maxEnd := 0
	for _, v := range vms {
		if v.End > maxEnd {
			maxEnd = v.End
		}
	}
	cpu := make([]float64, maxEnd+2)
	mem := make([]float64, maxEnd+2)
	for _, v := range vms {
		cpu[v.Start] += v.Demand.CPU
		cpu[v.End+1] -= v.Demand.CPU
		mem[v.Start] += v.Demand.Mem
		mem[v.End+1] -= v.Demand.Mem
	}
	var c, m float64
	for t := 1; t <= maxEnd; t++ {
		c += cpu[t]
		m += mem[t]
		if c > s.Capacity.CPU+1e-9 {
			return fmt.Errorf("server %d CPU over capacity at t=%d", s.ID, t)
		}
		if m > s.Capacity.Mem+1e-9 {
			return fmt.Errorf("server %d memory over capacity at t=%d", s.ID, t)
		}
	}
	return nil
}
