package search

import (
	"context"
	"math"
	"testing"

	"vmalloc/internal/baseline"
	"vmalloc/internal/core"
	"vmalloc/internal/energy"
	"vmalloc/internal/ilp"
	"vmalloc/internal/model"
	"vmalloc/internal/workload"
)

func genInstance(t *testing.T, seed int64, n, k int) model.Instance {
	t.Helper()
	inst, err := workload.Generate(
		workload.Spec{NumVMs: n, MeanInterArrival: 2, MeanLength: 40},
		workload.FleetSpec{NumServers: k, TransitionTime: 1},
		seed,
	)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestImproveNeverWorsensAndStaysFeasible(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		inst := genInstance(t, seed, 60, 30)
		base, err := baseline.NewFFPS(core.WithSeed(seed)).Allocate(context.Background(), inst)
		if err != nil {
			t.Fatal(err)
		}
		place, final, stats, err := (&Improver{Seed: seed}).Improve(inst, base.Placement)
		if err != nil {
			t.Fatal(err)
		}
		if err := ilp.CheckPlacement(inst, place); err != nil {
			t.Fatalf("seed %d: improved placement infeasible: %v", seed, err)
		}
		want, err := energy.EvaluateObjective(inst, place)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(want.Total()-final) > 1e-6 {
			t.Fatalf("seed %d: reported %g != evaluator %g", seed, final, want.Total())
		}
		if final > base.Energy.Total()+1e-6 {
			t.Fatalf("seed %d: search worsened energy %g -> %g", seed, base.Energy.Total(), final)
		}
		if math.Abs(stats.Start-base.Energy.Total()) > 1e-6 {
			t.Errorf("seed %d: stats.Start %g != base %g", seed, stats.Start, base.Energy.Total())
		}
		if stats.Improved() < 0 || stats.Improved() > 1 {
			t.Errorf("seed %d: Improved() = %g", seed, stats.Improved())
		}
	}
}

func TestImproveFFPSSubstantially(t *testing.T) {
	inst := genInstance(t, 3, 80, 40)
	base, err := baseline.NewFFPS(core.WithSeed(3)).Allocate(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	_, final, stats, err := (&Improver{Seed: 3}).Improve(inst, base.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := 1 - final/base.Energy.Total(); ratio < 0.15 {
		t.Errorf("search only shaved %.1f%% off FFPS (rounds %d, moves %d+%d)",
			100*ratio, stats.Rounds, stats.Relocations, stats.Swaps)
	}
}

func TestImproveMinCostFindsLittle(t *testing.T) {
	inst := genInstance(t, 4, 80, 40)
	base, err := core.NewMinCost().Allocate(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	_, final, _, err := (&Improver{Seed: 4}).Improve(inst, base.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := 1 - final/base.Energy.Total(); ratio > 0.15 {
		t.Errorf("search found %.1f%% on a MinCost placement — the heuristic should not be that loose", 100*ratio)
	}
}

func TestImproveTowardOptimumOnTiny(t *testing.T) {
	// On exhaustively-solvable instances, MinCost+search must land between
	// MinCost and the optimum.
	for seed := int64(10); seed < 16; seed++ {
		inst := genInstance(t, seed, 6, 3)
		heur, err := core.NewMinCost().Allocate(context.Background(), inst)
		if err != nil {
			continue
		}
		_, improved, _, err := (&Improver{Seed: seed}).Improve(inst, heur.Placement)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, _, err := (&ilp.BranchAndBound{}).Solve(context.Background(), inst)
		if err != nil {
			t.Fatal(err)
		}
		if improved < opt-1e-6 {
			t.Fatalf("seed %d: search result %g beats the optimum %g", seed, improved, opt)
		}
		if improved > heur.Energy.Total()+1e-6 {
			t.Fatalf("seed %d: search worsened the heuristic", seed)
		}
	}
}

func TestImproveDeterministic(t *testing.T) {
	inst := genInstance(t, 5, 50, 25)
	base, err := baseline.NewFFPS(core.WithSeed(5)).Allocate(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	p1, e1, _, err := (&Improver{Seed: 9}).Improve(inst, base.Placement)
	if err != nil {
		t.Fatal(err)
	}
	p2, e2, _, err := (&Improver{Seed: 9}).Improve(inst, base.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatalf("nondeterministic: %g vs %g", e1, e2)
	}
	for id := range p1 {
		if p1[id] != p2[id] {
			t.Fatalf("placements differ for vm %d", id)
		}
	}
}

func TestImproveSwapOnlyWhenRelocationStuck(t *testing.T) {
	// Two servers sized so each holds exactly one of the two concurrent
	// VMs: relocation can never move anything (no spare capacity), but a
	// swap exchanges the mis-assigned pair.
	cheap := model.Server{ID: 1, Capacity: model.Resources{CPU: 4, Mem: 8}, PIdle: 40, PPeak: 90, TransitionTime: 1}
	costly := model.Server{ID: 2, Capacity: model.Resources{CPU: 4, Mem: 8}, PIdle: 100, PPeak: 220, TransitionTime: 1}
	long := model.VM{ID: 1, Demand: model.Resources{CPU: 4, Mem: 4}, Start: 1, End: 100}
	short := model.VM{ID: 2, Demand: model.Resources{CPU: 4, Mem: 4}, Start: 1, End: 10}
	inst := model.NewInstance([]model.VM{long, short}, []model.Server{cheap, costly})

	// Mis-assign: long VM on the costly server.
	bad := map[int]int{1: 2, 2: 1}
	place, final, stats, err := (&Improver{Seed: 1, MaxRounds: 50}).Improve(inst, bad)
	if err != nil {
		t.Fatal(err)
	}
	badEnergy, err := energy.EvaluateObjective(inst, bad)
	if err != nil {
		t.Fatal(err)
	}
	if final >= badEnergy.Total() {
		t.Fatalf("swap search did not improve: %g vs %g (stats %+v)", final, badEnergy.Total(), stats)
	}
	if place[1] != 1 || place[2] != 2 {
		t.Errorf("expected the long VM on the cheap server: %v", place)
	}
	if stats.Swaps == 0 {
		t.Errorf("improvement without swaps? %+v", stats)
	}
	// With swaps disabled, the search must be stuck.
	_, stuck, _, err := (&Improver{Seed: 1, DisableSwaps: true}).Improve(inst, bad)
	if err != nil {
		t.Fatal(err)
	}
	if stuck != badEnergy.Total() {
		t.Errorf("relocation-only search moved a full server: %g vs %g", stuck, badEnergy.Total())
	}
}

func TestImproveErrors(t *testing.T) {
	inst := genInstance(t, 6, 10, 5)
	im := &Improver{}
	if _, _, _, err := im.Improve(model.Instance{}, nil); err == nil {
		t.Error("invalid instance accepted")
	}
	if _, _, _, err := im.Improve(inst, map[int]int{}); err == nil {
		t.Error("unplaced VMs accepted")
	}
	if _, _, _, err := im.Improve(inst, map[int]int{inst.VMs[0].ID: 999}); err == nil {
		t.Error("unknown server accepted")
	}
	// Infeasible input: everything on one small server.
	over := make(map[int]int, len(inst.VMs))
	for _, v := range inst.VMs {
		over[v.ID] = inst.Servers[0].ID
	}
	if _, _, _, err := im.Improve(inst, over); err == nil {
		t.Log("note: all-on-one happened to be feasible for this draw")
	}
}
