// Benchmarks that regenerate the paper's evaluation: one benchmark per
// table and figure (running the corresponding experiment in quick mode),
// plus allocator micro-benchmarks.
//
// The full-fidelity numbers are produced by `go run ./cmd/vmsim -exp all`;
// these benches exercise exactly the same code paths with scaled-down
// sweeps so `go test -bench=.` stays fast.
package vmalloc_test

import (
	"context"
	"strconv"
	"testing"

	"vmalloc"
	"vmalloc/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	opts := experiments.Options{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(ctx, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 || len(res.Tables[0].Rows) == 0 {
			b.Fatal("experiment produced no data")
		}
	}
}

func BenchmarkTable1Catalog(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkTable2Catalog(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkFig2Reduction(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkFig3Utilization(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkFig4LoadCurve(b *testing.B)      { benchExperiment(b, "fig4") }
func BenchmarkFig5Transition(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkFig6Length(b *testing.B)         { benchExperiment(b, "fig6") }
func BenchmarkFig7Standard(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8StdUtilization(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig9LoadLinear(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkOptimalityGap(b *testing.B)      { benchExperiment(b, "optgap") }
func BenchmarkAblation(b *testing.B)           { benchExperiment(b, "ablation") }
func BenchmarkOnlineExtension(b *testing.B)    { benchExperiment(b, "online") }
func BenchmarkConsolidation(b *testing.B)      { benchExperiment(b, "consolidation") }
func BenchmarkSensitivity(b *testing.B)        { benchExperiment(b, "sensitivity") }
func BenchmarkScaling(b *testing.B)            { benchExperiment(b, "scaling") }
func BenchmarkProportionality(b *testing.B)    { benchExperiment(b, "proportionality") }
func BenchmarkDiurnal(b *testing.B)            { benchExperiment(b, "diurnal") }
func BenchmarkLocalSearch(b *testing.B)        { benchExperiment(b, "localsearch") }

// BenchmarkMinCostAllocate measures raw allocator throughput at paper
// scales (servers = VMs/2).
func BenchmarkMinCostAllocate(b *testing.B) {
	for _, m := range []int{100, 250, 500} {
		b.Run(strconv.Itoa(m)+"vms", func(b *testing.B) {
			inst := benchInstance(b, m)
			alloc := vmalloc.NewMinCost()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := alloc.Allocate(context.Background(), inst); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "vms/s")
		})
	}
}

// BenchmarkMinCostParallel compares the sequential scan against the
// parallel engine at a scale (5000 VMs on 500 servers) where the fan-out
// pays for itself. Run with -cpu to sweep GOMAXPROCS; placements are
// byte-identical at every setting, so the benchmark measures pure
// engine overhead/speedup.
func BenchmarkMinCostParallel(b *testing.B) {
	inst := largeBenchInstance(b, 5000, 500)
	for _, bc := range []struct {
		name        string
		parallelism int
	}{
		{"sequential", 1},
		{"parallel", 0}, // 0 = auto: min(GOMAXPROCS, ceil(servers/16))
	} {
		b.Run(bc.name, func(b *testing.B) {
			alloc := vmalloc.NewMinCost(vmalloc.WithParallelism(bc.parallelism))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := alloc.Allocate(context.Background(), inst)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Stats.Workers), "workers")
				}
			}
			b.ReportMetric(float64(len(inst.VMs))*float64(b.N)/b.Elapsed().Seconds(), "vms/s")
		})
	}
}

// BenchmarkBestFitParallel is the same comparison for the argmin-based
// best-fit baseline.
func BenchmarkBestFitParallel(b *testing.B) {
	inst := largeBenchInstance(b, 5000, 500)
	for _, bc := range []struct {
		name        string
		parallelism int
	}{
		{"sequential", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			alloc := vmalloc.NewBestFit(vmalloc.WithParallelism(bc.parallelism))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := alloc.Allocate(context.Background(), inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// largeBenchInstance builds a dense instance big enough for the parallel
// engine's auto mode to spin up a full worker pool.
func largeBenchInstance(b *testing.B, vms, servers int) vmalloc.Instance {
	b.Helper()
	inst, err := vmalloc.Generate(
		vmalloc.WorkloadSpec{NumVMs: vms, MeanInterArrival: 0.5, MeanLength: 120},
		vmalloc.FleetSpec{NumServers: servers, TransitionTime: 1},
		1,
	)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkFFPSAllocate measures the baseline's throughput.
func BenchmarkFFPSAllocate(b *testing.B) {
	inst := benchInstance(b, 250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vmalloc.NewFFPS(vmalloc.WithSeed(int64(i))).Allocate(context.Background(), inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateObjective measures the exact Eq. 7 evaluator.
func BenchmarkEvaluateObjective(b *testing.B) {
	inst := benchInstance(b, 250)
	res, err := vmalloc.NewMinCost().Allocate(context.Background(), inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vmalloc.EvaluateObjective(inst, res.Placement); err != nil {
			b.Fatal(err)
		}
	}
}

func benchInstance(b *testing.B, m int) vmalloc.Instance {
	b.Helper()
	inst, err := vmalloc.Generate(
		vmalloc.WorkloadSpec{NumVMs: m, MeanInterArrival: 2, MeanLength: 50},
		vmalloc.FleetSpec{NumServers: m / 2, TransitionTime: 1},
		1,
	)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}
