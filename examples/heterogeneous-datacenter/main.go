// Heterogeneous datacenter: hand-build a small mixed fleet (old
// power-hungry blades next to new efficient ones, slow and fast wake-up
// times) and watch where the allocator sends a bursty batch workload.
//
// This is the paper's §I motivation in miniature: non-homogeneous servers
// mean VMs cannot be spread uniformly — the allocator must weigh each
// server's idle power, marginal power and transition cost.
//
//	go run ./examples/heterogeneous-datacenter
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"vmalloc"
)

func main() {
	servers := []vmalloc.Server{
		// Two ageing blades: cheap to wake, expensive to keep on.
		{ID: 1, Type: "legacy", Capacity: vmalloc.Resources{CPU: 16, Mem: 32},
			PIdle: 180, PPeak: 260, TransitionTime: 0.5},
		{ID: 2, Type: "legacy", Capacity: vmalloc.Resources{CPU: 16, Mem: 32},
			PIdle: 180, PPeak: 260, TransitionTime: 0.5},
		// Two modern hosts: energy-proportional but slow to wake.
		{ID: 3, Type: "modern", Capacity: vmalloc.Resources{CPU: 32, Mem: 64},
			PIdle: 90, PPeak: 300, TransitionTime: 3},
		{ID: 4, Type: "modern", Capacity: vmalloc.Resources{CPU: 32, Mem: 64},
			PIdle: 90, PPeak: 300, TransitionTime: 3},
		// One big box for overflow.
		{ID: 5, Type: "jumbo", Capacity: vmalloc.Resources{CPU: 64, Mem: 128},
			PIdle: 240, PPeak: 520, TransitionTime: 2},
	}

	// Three nightly batch waves, 20 VMs each, 30 minutes apart.
	var vms []vmalloc.VM
	id := 1
	for wave := 0; wave < 3; wave++ {
		start := 1 + wave*30
		for k := 0; k < 20; k++ {
			vms = append(vms, vmalloc.VM{
				ID:     id,
				Type:   "batch",
				Demand: vmalloc.Resources{CPU: 2, Mem: 4},
				Start:  start,
				End:    start + 19, // 20-minute jobs
			})
			id++
		}
	}
	inst := vmalloc.NewInstance(vms, servers)

	res, err := vmalloc.NewMinCost().Allocate(context.Background(), inst)
	if err != nil {
		log.Fatal(err)
	}
	if err := vmalloc.CheckPlacement(inst, res.Placement); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %d batch VMs, total energy %.0f Wmin\n\n",
		len(res.Placement), res.Energy.Total())

	// Count VMs per server.
	perServer := map[int]int{}
	for _, sid := range res.Placement {
		perServer[sid]++
	}
	ids := make([]int, 0, len(servers))
	for _, s := range servers {
		ids = append(ids, s.ID)
	}
	sort.Ints(ids)
	for _, sid := range ids {
		s, _ := inst.ServerByID(sid)
		fmt.Printf("server %d (%-6s, idle %3.0f W, wake %.1f min): %2d VMs\n",
			sid, s.Type, s.PIdle, s.TransitionTime, perServer[sid])
	}

	ffps, err := vmalloc.NewFFPS(vmalloc.WithSeed(7)).Allocate(context.Background(), inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFFPS on the same instance: %.0f Wmin (%.1f%% more)\n",
		ffps.Energy.Total(),
		100*(ffps.Energy.Total()/res.Energy.Total()-1))

	// The waves are 10 minutes apart end-to-start; whether a server
	// bridges the gap or naps depends on its idle power vs transition
	// cost. Show the decision for the busiest server.
	busiest, best := 0, -1
	for sid, n := range perServer {
		if n > best {
			busiest, best = sid, n
		}
	}
	s, _ := inst.ServerByID(busiest)
	gap := 10.0
	fmt.Printf("\nbusiest server %d: bridging a %g-min gap costs %.0f Wmin, a sleep/wake cycle %.0f Wmin → it %s\n",
		busiest, gap, s.PIdle*gap, s.TransitionCost(),
		map[bool]string{true: "stays active", false: "naps between waves"}[s.PIdle*gap <= s.TransitionCost()])
}
