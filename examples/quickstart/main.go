// Quickstart: generate a paper-style workload, allocate it with the
// MinCost heuristic and with the FFPS baseline, and compare the energy
// bills.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"vmalloc"
)

func main() {
	// 100 VM requests arriving every ~2 minutes, running ~50 minutes each,
	// drawn from the EC2-style Table I catalog; 50 servers drawn from the
	// Table II catalog, each needing 1 minute to wake from power saving.
	inst, err := vmalloc.Generate(
		vmalloc.WorkloadSpec{NumVMs: 100, MeanInterArrival: 2, MeanLength: 50},
		vmalloc.FleetSpec{NumServers: 50, TransitionTime: 1},
		42, // seed: same seed, same instance
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d VMs on %d servers, horizon %d minutes\n\n",
		len(inst.VMs), len(inst.Servers), inst.Horizon)

	for _, alloc := range []vmalloc.Allocator{
		vmalloc.NewMinCost(),
		vmalloc.NewFFPS(vmalloc.WithSeed(42)),
	} {
		res, err := alloc.Allocate(context.Background(), inst)
		if err != nil {
			log.Fatal(err)
		}
		// Every placement can be independently re-verified against the
		// paper's ILP constraints and re-priced with the exact evaluator.
		if err := vmalloc.CheckPlacement(inst, res.Placement); err != nil {
			log.Fatalf("%s produced an infeasible placement: %v", res.Allocator, err)
		}
		util, err := vmalloc.AverageUtilization(inst, res.Placement)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %8.0f Wmin (run %6.0f, idle %6.0f, transition %5.0f)  "+
			"servers used: %2d  util cpu/mem: %2.0f%%/%2.0f%%\n",
			res.Allocator, res.Energy.Total(),
			res.Energy.Run, res.Energy.Idle, res.Energy.Transition,
			res.ServersUsed, 100*util.CPU, 100*util.Mem)
	}

	ours, err := vmalloc.NewMinCost().Allocate(context.Background(), inst)
	if err != nil {
		log.Fatal(err)
	}
	ffps, err := vmalloc.NewFFPS(vmalloc.WithSeed(42)).Allocate(context.Background(), inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nenergy reduction ratio vs FFPS: %.1f%%\n",
		100*vmalloc.ReductionRatio(ours.Energy, ffps.Energy))
}
