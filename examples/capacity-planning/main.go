// Capacity planning: how many servers does a given request stream really
// need, and what does the energy bill look like as the fleet shrinks?
//
// The allocator is run against the same workload on progressively smaller
// fleets; the sweep reports energy, servers actually used, and utilisation
// until the workload no longer fits. This is the kind of downstream
// question the library answers beyond the paper's own figures.
//
//	go run ./examples/capacity-planning
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"vmalloc"
)

func main() {
	spec := vmalloc.WorkloadSpec{NumVMs: 150, MeanInterArrival: 1, MeanLength: 40}

	fmt.Println("fleet  placed  used  energy(kWmin)  cpu-util  mem-util")
	for _, fleetSize := range []int{80, 60, 40, 30, 20, 15, 10} {
		inst, err := vmalloc.Generate(spec,
			vmalloc.FleetSpec{NumServers: fleetSize, TransitionTime: 1}, 3)
		if err != nil {
			log.Fatal(err)
		}
		res, err := vmalloc.NewMinCost().Allocate(context.Background(), inst)
		var unplaceable *vmalloc.UnplaceableError
		if errors.As(err, &unplaceable) {
			fmt.Printf("%5d  the workload no longer fits (vm %d rejected) — stop\n",
				fleetSize, unplaceable.VM.ID)
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		util, err := vmalloc.AverageUtilization(inst, res.Placement)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %6d  %4d  %13.1f  %7.0f%%  %7.0f%%\n",
			fleetSize, len(res.Placement), res.ServersUsed,
			res.Energy.Total()/1000, 100*util.CPU, 100*util.Mem)
	}

	fmt.Println("\nNote how the energy bill barely moves while the fleet shrinks: the")
	fmt.Println("allocator was already consolidating onto a core of efficient servers,")
	fmt.Println("so the excess machines were never woken. Provisioning just above the")
	fmt.Println("'no longer fits' line costs almost nothing extra in energy.")
}
