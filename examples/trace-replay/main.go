// Trace replay: capture a request trace, analyse it, refit a synthetic
// generator to it, and check that the refitted workload stresses the
// allocator the same way — the workflow for using this library against a
// real data-center log.
//
//	go run ./examples/trace-replay
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"vmalloc"
)

func main() {
	// Pretend this came from production: a bursty day/night request log.
	original, err := vmalloc.GenerateDiurnal(
		vmalloc.DiurnalSpec{
			NumVMs: 150, MeanInterArrival: 2, MeanLength: 45,
			PeakToTrough: 4, Period: 480,
		},
		vmalloc.FleetSpec{NumServers: 70, TransitionTime: 1},
		99,
	)
	if err != nil {
		log.Fatal(err)
	}

	// Export and re-import the trace (this is what cmd/vmtrace does).
	var buf bytes.Buffer
	if err := vmalloc.WriteTraceCSV(&buf, original.VMs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported trace: %d bytes of CSV\n", buf.Len())
	vms, err := vmalloc.ReadTraceCSV(&buf)
	if err != nil {
		log.Fatal(err)
	}

	st := vmalloc.AnalyzeTrace(vms)
	fmt.Printf("trace stats: %d requests, inter-arrival %.1f min, length %.1f min, peak concurrency %d\n",
		st.Count, st.MeanInterArrival, st.MeanLength, st.PeakConcurrency)

	// Refit a flat synthetic spec to the trace and regenerate.
	spec := st.FitSpec()
	refit, err := vmalloc.Generate(spec, vmalloc.FleetSpec{NumServers: 70, TransitionTime: 1}, 100)
	if err != nil {
		log.Fatal(err)
	}

	// Same allocator, both workloads: how well does the synthetic stand in?
	for _, run := range []struct {
		name string
		inst vmalloc.Instance
	}{
		{"original trace ", original},
		{"refit synthetic", refit},
	} {
		ours, err := vmalloc.NewMinCost().Allocate(context.Background(), run.inst)
		if err != nil {
			log.Fatal(err)
		}
		ffps, err := vmalloc.NewFFPS(vmalloc.WithSeed(5)).Allocate(context.Background(), run.inst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: MinCost %7.0f Wmin, FFPS %7.0f Wmin, reduction %.1f%%\n",
			run.name, ours.Energy.Total(), ffps.Energy.Total(),
			100*vmalloc.ReductionRatio(ours.Energy, ffps.Energy))
	}
	fmt.Println("\nThe flat refit reproduces the averages but not the burstiness — the")
	fmt.Println("original (diurnal) trace shows a different peak concurrency. For shape-")
	fmt.Println("faithful regeneration, fit a DiurnalSpec to the bucketed arrival counts.")
}
