// Optimality gap: on instances small enough to solve exactly, compare the
// MinCost heuristic against the true optimum of the paper's ILP
// (found by branch and bound).
//
//	go run ./examples/optimality-gap
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"vmalloc"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	types := vmalloc.VMTypeCatalog()[:4] // standard types only
	srvTypes := vmalloc.ServerTypeCatalog()[:3]

	var sumHeur, sumOpt float64
	worst := 0.0
	const trials = 10
	fmt.Println("trial  optimum(Wmin)  MinCost(Wmin)  gap")
	for trial := 1; trial <= trials; trial++ {
		// 6 VMs on 3 servers — 3^6 = 729 assignments.
		var vms []vmalloc.VM
		for j := 0; j < 6; j++ {
			vt := types[rng.Intn(len(types))]
			start := 1 + rng.Intn(20)
			vms = append(vms, vmalloc.VM{
				ID: j + 1, Type: vt.Name, Demand: vt.Resources(),
				Start: start, End: start + 2 + rng.Intn(12),
			})
		}
		var servers []vmalloc.Server
		for i, st := range srvTypes {
			servers = append(servers, st.NewServer(i+1, 1))
		}
		inst := vmalloc.NewInstance(vms, servers)

		heur, err := vmalloc.NewMinCost().Allocate(context.Background(), inst)
		if err != nil {
			// A dense draw may not fit three small servers; redraw.
			trial--
			continue
		}
		_, opt, err := vmalloc.SolveOptimal(context.Background(), inst)
		if err != nil {
			log.Fatal(err)
		}
		gap := heur.Energy.Total()/opt - 1
		if gap > worst {
			worst = gap
		}
		sumHeur += heur.Energy.Total()
		sumOpt += opt
		fmt.Printf("%5d  %13.1f  %13.1f  %4.1f%%\n", trial, opt, heur.Energy.Total(), 100*gap)
	}
	fmt.Printf("\naggregate gap over %d trials: %.1f%% (worst single trial %.1f%%)\n",
		trials, 100*(sumHeur/sumOpt-1), 100*worst)
	fmt.Println("\nThe ILP is NP-hard (the paper solves it heuristically for this reason);")
	fmt.Println("branch and bound stays tractable only at toy sizes, but it certifies how")
	fmt.Println("close the greedy least-incremental-cost rule gets.")
}
