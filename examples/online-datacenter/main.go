// Online datacenter: run the same request stream through the event-driven
// simulator, where waking a server takes real time and sleep decisions
// are made with an idle timeout instead of clairvoyance. Shows the
// energy/latency trade-off the offline model hides.
//
//	go run ./examples/online-datacenter
package main

import (
	"context"
	"fmt"
	"log"

	"vmalloc"
)

func main() {
	inst, err := vmalloc.Generate(
		vmalloc.WorkloadSpec{NumVMs: 120, MeanInterArrival: 2, MeanLength: 50},
		vmalloc.FleetSpec{NumServers: 60, TransitionTime: 2}, // slow 2-min wake-ups
		21,
	)
	if err != nil {
		log.Fatal(err)
	}

	// The offline clairvoyant solution is the bound to beat.
	offline, err := vmalloc.NewMinCost().Allocate(context.Background(), inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline (clairvoyant) MinCost: %.0f Wmin\n\n", offline.Energy.Total())

	fmt.Println("timeout  energy(Wmin)  vs offline  wake-ups  mean delay  max delay")
	for _, timeout := range []int{0, 2, 5, 15, 60} {
		eng := &vmalloc.OnlineEngine{Policy: &vmalloc.OnlineMinCost{}, IdleTimeout: timeout}
		rep, err := eng.Run(inst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d  %12.0f  %+9.1f%%  %8d  %7.2f m  %6d m\n",
			timeout, rep.Energy.Total(),
			100*(rep.Energy.Total()/offline.Energy.Total()-1),
			rep.Transitions, rep.MeanStartDelay, rep.MaxStartDelay)
	}

	fmt.Println("\nA short idle timeout tracks the clairvoyant bound within a few percent")
	fmt.Println("but every cold start stalls a VM behind the 2-minute wake-up; a long")
	fmt.Println("timeout buys responsiveness with idle watts. The offline formulation")
	fmt.Println("of the paper silently gets both for free.")

	// Policies differ much more than timeouts do.
	fmt.Println("\npolicy comparison at timeout 2:")
	for _, p := range []vmalloc.OnlinePolicy{
		&vmalloc.OnlineMinCost{},
		&vmalloc.OnlinePreferActive{},
		vmalloc.NewOnlineFirstFit(vmalloc.WithSeed(21)),
	} {
		rep, err := (&vmalloc.OnlineEngine{Policy: p, IdleTimeout: 2}).Run(inst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %8.0f Wmin  (mean delay %.2f m)\n",
			p.Name(), rep.Energy.Total(), rep.MeanStartDelay)
	}

	// The same stream through the service layer: a live Cluster admits the
	// requests one by one — exactly what cmd/vmserve does over HTTP — and
	// lands on the same energy as the raw replay engine, because batched
	// admission preserves the engine's deterministic placement order.
	rep, err := (&vmalloc.OnlineEngine{Policy: &vmalloc.OnlineMinCost{}, IdleTimeout: 2}).Run(inst)
	if err != nil {
		log.Fatal(err)
	}
	c, err := vmalloc.OpenCluster(vmalloc.ClusterConfig{Servers: inst.Servers, IdleTimeout: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	for _, v := range vmalloc.OnlineArrivalOrder(inst.VMs) {
		adms, err := c.Admit(context.Background(), []vmalloc.VMRequest{{
			ID:              v.ID,
			Demand:          v.Demand,
			Start:           v.Start,
			DurationMinutes: v.Duration(),
		}})
		if err != nil {
			log.Fatal(err)
		}
		if !adms[0].Accepted {
			log.Fatalf("vm %d rejected: %s", v.ID, adms[0].Reason)
		}
	}
	if err := c.AdvanceTo(1 << 20); err != nil { // settle past the last departure
		log.Fatal(err)
	}
	st := c.State()
	fmt.Printf("\nreplay engine:   %.0f Wmin\ncluster service: %.0f Wmin  (%d admitted, %d wake-ups)\n",
		rep.Energy.Total(), st.TotalEnergy, st.Admitted, st.Transitions)
	if st.Energy != rep.Energy {
		log.Fatal("service layer diverged from the replay engine")
	}
	fmt.Println("identical — the service layer is the same state machine, kept alive.")
}
