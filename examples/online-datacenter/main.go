// Online datacenter: run the same request stream through the event-driven
// simulator, where waking a server takes real time and sleep decisions
// are made with an idle timeout instead of clairvoyance. Shows the
// energy/latency trade-off the offline model hides.
//
//	go run ./examples/online-datacenter
package main

import (
	"context"
	"fmt"
	"log"

	"vmalloc"
)

func main() {
	inst, err := vmalloc.Generate(
		vmalloc.WorkloadSpec{NumVMs: 120, MeanInterArrival: 2, MeanLength: 50},
		vmalloc.FleetSpec{NumServers: 60, TransitionTime: 2}, // slow 2-min wake-ups
		21,
	)
	if err != nil {
		log.Fatal(err)
	}

	// The offline clairvoyant solution is the bound to beat.
	offline, err := vmalloc.NewMinCost().Allocate(context.Background(), inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline (clairvoyant) MinCost: %.0f Wmin\n\n", offline.Energy.Total())

	fmt.Println("timeout  energy(Wmin)  vs offline  wake-ups  mean delay  max delay")
	for _, timeout := range []int{0, 2, 5, 15, 60} {
		eng := &vmalloc.OnlineEngine{Policy: &vmalloc.OnlineMinCost{}, IdleTimeout: timeout}
		rep, err := eng.Run(inst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d  %12.0f  %+9.1f%%  %8d  %7.2f m  %6d m\n",
			timeout, rep.Energy.Total(),
			100*(rep.Energy.Total()/offline.Energy.Total()-1),
			rep.Transitions, rep.MeanStartDelay, rep.MaxStartDelay)
	}

	fmt.Println("\nA short idle timeout tracks the clairvoyant bound within a few percent")
	fmt.Println("but every cold start stalls a VM behind the 2-minute wake-up; a long")
	fmt.Println("timeout buys responsiveness with idle watts. The offline formulation")
	fmt.Println("of the paper silently gets both for free.")

	// Policies differ much more than timeouts do.
	fmt.Println("\npolicy comparison at timeout 2:")
	for _, p := range []vmalloc.OnlinePolicy{
		&vmalloc.OnlineMinCost{},
		&vmalloc.OnlinePreferActive{},
		vmalloc.NewOnlineFirstFit(vmalloc.WithSeed(21)),
	} {
		rep, err := (&vmalloc.OnlineEngine{Policy: p, IdleTimeout: 2}).Run(inst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %8.0f Wmin  (mean delay %.2f m)\n",
			p.Name(), rep.Energy.Total(), rep.MeanStartDelay)
	}
}
