module vmalloc

go 1.23
